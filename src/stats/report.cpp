#include "stats/report.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace compass::stats {

void Table::add_row(std::vector<std::string> row) {
  COMPASS_CHECK_MSG(row.size() == header_.size(),
                    "row width " << row.size() << " != header width "
                                 << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[i]))
         << row[i];
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t i = 0; i < header_.size(); ++i)
    os << std::string(widths[i] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string pct(double v, int precision) { return fmt(v, precision) + "%"; }

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace compass::stats
