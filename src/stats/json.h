// Machine-readable statistics snapshots: a flat capture of the registry,
// the per-CPU time breakdown and the final cycle count, serializable to a
// small JSON dialect (objects, strings, unsigned integers, arrays) and
// parseable back for golden comparisons.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.h"
#include "stats/counters.h"
#include "stats/time_breakdown.h"

namespace compass::stats {

struct HistSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

struct StatsSnapshot {
  Cycles cycles = 0;
  std::map<std::string, std::uint64_t> counters;
  /// Per-CPU cycles by mode, indexed [cpu][ExecMode].
  std::vector<std::array<std::uint64_t, 4>> cpu_time;
  std::map<std::string, HistSummary> histograms;
};

/// Capture the end-of-run state of a simulation or replay.
StatsSnapshot make_snapshot(Cycles cycles, const StatsRegistry& registry,
                            const TimeBreakdown& breakdown);

/// Serialize to pretty-printed JSON (stable key order: std::map).
std::string to_json(const StatsSnapshot& snap);

/// Parse a snapshot previously produced by to_json. Throws
/// util::SimError on malformed input or schema mismatch.
StatsSnapshot parse_stats_json(const std::string& text);

/// Write to_json(snap) to `path`; throws util::SimError on I/O failure.
void write_json_file(const std::string& path, const StatsSnapshot& snap);

/// Slurp + parse a snapshot file.
StatsSnapshot read_json_file(const std::string& path);

}  // namespace compass::stats
