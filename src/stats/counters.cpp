#include "stats/counters.h"

#include <bit>

namespace compass::stats {

void Histogram::record(std::uint64_t sample) {
  const std::size_t bucket =
      sample == 0 ? 0 : static_cast<std::size_t>(std::bit_width(sample));
  COMPASS_CHECK(bucket < kBuckets);
  ++buckets_[bucket];
  ++count_;
  sum_ += sample;
  if (count_ == 1 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  COMPASS_CHECK(q >= 0.0 && q <= 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Midpoint of the bucket range as the representative value.
      if (i == 0) return 0;
      const std::uint64_t lo = 1ull << (i - 1);
      const std::uint64_t hi = (i >= 64) ? ~0ull : (1ull << i) - 1;
      return lo + (hi - lo) / 2;
    }
  }
  return max_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

void StatsRegistry::reset_all() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

}  // namespace compass::stats
