// Plain-text table rendering for experiment harnesses.
//
// The bench binaries print the same rows the paper's tables report; this
// formatter keeps those outputs aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace compass::stats {

/// A simple column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);
  /// Render with a title line, a header row, a separator, and all rows.
  std::string to_string(const std::string& title = "") const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 1);
/// Format a percentage cell, e.g. "85.1%".
std::string pct(double v, int precision = 1);
/// Format an integer with thousands separators, e.g. "34,841".
std::string with_commas(std::uint64_t v);

}  // namespace compass::stats
