// Self-serve sharded warp restore: spine + per-process shard codec and the
// WarpServer hub that replays the shards during a restore.
//
// The legacy warp (checkpoint.h) is port-paced: every frontend batch crosses
// the EventPort and the backend answers it from one global reply log, so the
// fast-forward serializes on 2N port crossings. The sharded warp splits the
// same information two ways at create time:
//
//  * the SPINE — the backend run loop's own decision stream: every pick-min
//    observation (proc, cycle, data/control) and every pending-batch rebase,
//    in loop order. A restore walk replays the loop from the spine alone,
//    never waiting on the frontends for data picks.
//  * per-process SHARDS — for each frontend, its replies in program order.
//    Each record carries a global sequence number: the position of the
//    corresponding frontend action (data reply consumed, control post taken)
//    in the backend's total consumption order. During the warp a frontend
//    replays its own shard locally, gated only by an atomic sequence ticket
//    that admits action `seq` exactly when all `seq-1` earlier actions have
//    retired — so every cross-thread interaction of the create run is
//    reproduced without any data batch crossing the port.
//
// Control events still cross the real port (their handlers mutate backend
// state the walk rebuilds live); the shard's kShardPost record only pins the
// post's slot in the sequence space. See DESIGN.md, "Self-serve warp".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/event.h"
#include "core/types.h"
#include "core/warp_hub.h"
#include "util/state_io.h"

namespace compass::ckpt {

// ---- spine -----------------------------------------------------------------

inline constexpr std::uint8_t kSpinePickData = 1;
inline constexpr std::uint8_t kSpinePickControl = 2;
inline constexpr std::uint8_t kSpineRebase = 3;
/// A frontend's interrupt-handler loop popped a descriptor here. The walk
/// re-emits the trace record at this stream position: in the create run the
/// backend was parked in wait_all_pending while the pop happened, which is
/// exactly "between the surrounding backend records".
inline constexpr std::uint8_t kSpineIrqPop = 4;
/// The backend dispatched an idle-CPU interrupt to a parked bottom half.
/// Replayed by invocation index because the live decision reads the
/// interrupt-request flag, which frontend pops clear on their own host
/// clock during the warp.
inline constexpr std::uint8_t kSpineIdleIrq = 5;

struct SpineRecord {
  std::uint8_t tag = kSpinePickData;
  ProcId proc = 0;
  /// Pick cycle (pick tags), the new pending-batch base (kSpineRebase), the
  /// popped CPU (kSpineIrqPop) or the maybe_dispatch_idle_irq invocation
  /// index (kSpineIdleIrq).
  Cycles value = 0;
};

std::vector<std::uint8_t> encode_spine(std::span<const SpineRecord> records);
/// Throws util::StateError on truncation or an unknown record tag.
std::vector<SpineRecord> decode_spine(std::span<const std::uint8_t> bytes);

// ---- shards ----------------------------------------------------------------

inline constexpr std::uint8_t kShardData = 1;
inline constexpr std::uint8_t kShardPost = 2;
/// An interrupt-queue pop the proc performed between two port actions.
/// Carries no sequence slot: per-proc program order is enough, because the
/// proc itself replays the pop at the same point of its own re-execution.
inline constexpr std::uint8_t kShardIrqPop = 3;

struct ShardRecord {
  std::uint8_t tag = kShardData;
  /// Global slot in the backend's consumption order (ticket admission key).
  /// kShardData / kShardPost only.
  std::uint64_t seq = 0;
  // kShardData only: the reply the frontend serves itself.
  Cycles resume_time = 0;
  CpuId cpu = kNoCpu;  ///< also the popped CPU for kShardIrqPop
  bool interrupt_pending = false;
  std::uint64_t l1_gen = 0;      ///< l1_filter runs only
  core::L1Teach teach{};         ///< l1_filter runs only
  // kShardIrqPop only: the recorded descriptor.
  core::IrqDesc irq{};
};

struct WarpShard {
  ProcId proc = 0;
  std::vector<ShardRecord> records;
};

/// `l1_filter` selects whether data records carry the gen+teach payload; it
/// must match the checkpoint's config fingerprint on both sides.
std::vector<std::uint8_t> encode_shards(std::span<const WarpShard> shards,
                                        bool l1_filter);
/// Throws util::StateError on truncation, a length mismatch between a
/// shard's declared payload and its decoded records, or an unknown tag.
std::vector<WarpShard> decode_shards(std::span<const std::uint8_t> bytes,
                                     bool l1_filter);

/// Structural validation after decode: every shard proc in [0, nprocs), no
/// duplicate shards, per-shard seqs strictly increasing (program order), and
/// the union of all seqs a bijection onto 0..total-1 — the ticket admits
/// every record exactly once or the warp would wedge. Throws util::StateError.
void validate_shards(std::span<const WarpShard> shards, std::uint64_t nprocs);

// ---- restore-side hub ------------------------------------------------------

/// The frontend/backend rendezvous for a self-serve warp. Installed on the
/// Communicator before the frontends start; frontends enter via
/// core::WarpHub::warp_post (from inside EventPort::post_and_wait), the
/// backend walk via the cursor methods (backend thread only).
class WarpServer final : public core::WarpHub {
 public:
  /// `trace_copies`: when a trace sink is attached, self-served data batches
  /// never reach the backend through the port, so each frontend queues a
  /// copy here for the walk to record at the dispatch point.
  WarpServer(std::vector<SpineRecord> spine, std::vector<WarpShard> shards,
             std::uint64_t nprocs, bool trace_copies);

  // ---- core::WarpHub (frontend threads) -----------------------------------
  bool warp_post(ProcId proc, std::span<const core::Event> batch,
                 core::Reply& out) override;
  bool warp_pop(ProcId proc, CpuId cpu,
                std::optional<core::IrqDesc>& out) override;
  void abort_waiters() override;

  // ---- backend walk -------------------------------------------------------
  /// Consume one leading kSpineIrqPop marker, if present: the walk emits the
  /// matching trace record before taking the next pick/rebase/idle record.
  bool next_marker(ProcId& proc, CpuId& cpu);
  /// Next spine pick; false once the spine is exhausted. Throws when the
  /// walk's schedule diverged (a rebase record where a pick is due).
  bool next_pick(ProcId& proc, Cycles& t, bool& is_data);
  /// Consume the next spine record, which must be a rebase for `proc`.
  Cycles take_rebase(ProcId proc);
  /// Consume the next spine record iff it is an idle-irq dispatch recorded
  /// at invocation `call`; false (nothing consumed) otherwise.
  bool idle_pick(std::uint64_t call, ProcId& proc);
  /// Blocking pop of `proc`'s next queued trace-batch copy.
  std::vector<core::Event> take_trace_batch(ProcId proc);
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

 private:
  struct Shard {
    std::vector<ShardRecord> records;
    std::size_t cursor = 0;                 // frontend thread only
    // Trace-batch copies, frontend -> backend walk. Bounded: a frontend far
    // ahead of the walk parks instead of buffering its whole shard.
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<core::Event>> trace_q;
  };

  void wait_turn(std::uint64_t seq);
  void advance_turn();

  std::vector<SpineRecord> spine_;
  std::size_t spine_cursor_ = 0;  // backend thread only
  std::vector<Shard> shards_;     // slot per proc; shard-less procs stay empty
  bool trace_copies_;

  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<bool> poisoned_{false};
  std::mutex ticket_mu_;
  std::condition_variable ticket_cv_;
};

}  // namespace compass::ckpt
