// CheckpointWriter / CheckpointRestorer: the core::CkptHook implementations
// that snapshot and restore a full simulation.
//
// A COMPASS frontend is a real host thread with a live call stack, which no
// portable snapshot can capture. The checkpoint therefore records two kinds
// of state:
//
//  * INSTALL state — everything only the memory model and the accounting
//    know (cache tags, directories, page tables, counters, time breakdown).
//    Loaded wholesale into the restored simulation.
//  * the WARP LOG — one record per backend reply from cycle 0 to the
//    snapshot point. A restore rebuilds all host-side state (workload
//    stacks, kernel structures, device queues, fault streams) by
//    re-executing the run with the memory model *skipped*: every data-batch
//    reply is fed from the log instead of MemorySystem::access(), so the
//    fast-forward costs host work proportional to the event stream, not to
//    the model. Because the backend grants locks and picks batches in the
//    identical deterministic order, the re-execution is bit-exact.
//  * VERIFY state — host-side structures the warp rebuilds (backend
//    dispatch state, arenas, kernel, devices, fault injector). Dumped at
//    create time and byte-compared against the rebuilt state at install
//    time: any divergence aborts the restore instead of continuing from a
//    subtly wrong world.
//
// After install the simulation continues fully live and, by the repo's
// determinism guarantee, produces byte-identical traces and counters to the
// uninterrupted run from the snapshot cycle onward.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ckpt/ckpt_format.h"
#include "core/ckpt_hook.h"
#include "sim/simulation.h"

namespace compass::ckpt {

struct CreateOptions {
  /// Snapshot at the first dispatch point at or after each cycle (sorted).
  std::vector<Cycles> at_cycles;
  /// Periodic snapshots every K cycles (region sampling). Exclusive with
  /// at_cycles.
  Cycles every = 0;
  /// Output path. With several snapshots, each file is `out`.<cycle>.
  std::string out;
  /// Tool bookkeeping stored verbatim (workload selection etc.).
  std::map<std::string, std::string> meta;
};

class CheckpointWriter final : public core::CkptHook {
 public:
  CheckpointWriter(const sim::SimulationConfig& cfg, CreateOptions opts);

  /// Bind to the fully-wired simulation (SimulationConfig::post_build).
  void bind(sim::Simulation& sim) { sim_ = &sim; }

  const std::vector<std::string>& written() const { return written_; }

  // ---- core::CkptHook -----------------------------------------------------

  bool warping() const override { return false; }
  Cycles window_boundary() const override { return next_target_; }
  bool at_dispatch_point(core::Backend& backend, Cycles t) override;
  void on_data_reply(ProcId proc, Cycles now_after,
                     const core::Reply& r) override;
  void on_control_reply(ProcId proc, const core::Reply& r) override;
  void on_deferred_reply(ProcId proc, const core::Reply& r) override;
  void warp_data_reply(ProcId proc, Cycles& now_after,
                       core::Reply& r) override;
  void warp_control_reply(ProcId proc, core::Reply& r) override;
  void warp_deferred_reply(ProcId proc, core::Reply& r) override;

 private:
  void snapshot(core::Backend& backend, Cycles t, Cycles target);

  sim::SimulationConfig cfg_;
  CreateOptions opts_;
  bool l1_filter_;
  sim::Simulation* sim_ = nullptr;
  util::StateSink log_;
  std::size_t next_at_ = 0;   ///< cursor into opts_.at_cycles
  Cycles next_target_;        ///< next snapshot cycle; max() when done
  std::vector<std::string> written_;
};

class CheckpointRestorer final : public core::CkptHook {
 public:
  /// `run_for` > 0 stops the run `run_for` cycles after the install point
  /// (region sampling); 0 runs to completion.
  explicit CheckpointRestorer(CheckpointFile file, Cycles run_for = 0);

  /// Bind to the fully-wired simulation (SimulationConfig::post_build).
  void bind(sim::Simulation& sim) { sim_ = &sim; }

  bool installed() const { return !warping_; }
  Cycles installed_at() const { return installed_at_; }

  // ---- core::CkptHook -----------------------------------------------------

  bool warping() const override { return warping_; }
  Cycles window_boundary() const override;
  bool at_dispatch_point(core::Backend& backend, Cycles t) override;
  void on_data_reply(ProcId proc, Cycles now_after,
                     const core::Reply& r) override;
  void on_control_reply(ProcId proc, const core::Reply& r) override;
  void on_deferred_reply(ProcId proc, const core::Reply& r) override;
  void warp_data_reply(ProcId proc, Cycles& now_after,
                       core::Reply& r) override;
  void warp_control_reply(ProcId proc, core::Reply& r) override;
  void warp_deferred_reply(ProcId proc, core::Reply& r) override;

 private:
  /// Throws unless the next log record is (`tag`, `proc`).
  void expect(std::uint8_t tag, ProcId proc, const char* what);
  void install(core::Backend& backend, Cycles t);
  void verify(core::Backend& backend);

  CheckpointFile file_;
  bool l1_filter_;
  Cycles run_for_;
  sim::Simulation* sim_ = nullptr;
  util::StateSource log_;
  bool warping_ = true;
  Cycles installed_at_ = 0;
  Cycles stop_at_;  ///< max() until the install point sets it
};

/// Rebuild the SimulationConfig a checkpoint was created with.
/// `workers_override` >= 0 replaces backend_workers (a host execution
/// strategy deliberately excluded from the fingerprint).
sim::SimulationConfig config_from(const CheckpointFile& f,
                                  int workers_override = -1);

}  // namespace compass::ckpt
