// CheckpointWriter / CheckpointRestorer: the core::CkptHook implementations
// that snapshot and restore a full simulation.
//
// A COMPASS frontend is a real host thread with a live call stack, which no
// portable snapshot can capture. The checkpoint therefore records two kinds
// of state:
//
//  * INSTALL state — everything only the memory model and the accounting
//    know (cache tags, directories, page tables, counters, time breakdown).
//    Loaded wholesale into the restored simulation.
//  * the WARP LOG — one record per backend reply from cycle 0 to the
//    snapshot point. A restore rebuilds all host-side state (workload
//    stacks, kernel structures, device queues, fault streams) by
//    re-executing the run with the memory model *skipped*: every data-batch
//    reply is fed from the log instead of MemorySystem::access(), so the
//    fast-forward costs host work proportional to the event stream, not to
//    the model. Because the backend grants locks and picks batches in the
//    identical deterministic order, the re-execution is bit-exact.
//  * VERIFY state — host-side structures the warp rebuilds (backend
//    dispatch state, arenas, kernel, devices, fault injector). Dumped at
//    create time and byte-compared against the rebuilt state at install
//    time: any divergence aborts the restore instead of continuing from a
//    subtly wrong world.
//
// After install the simulation continues fully live and, by the repo's
// determinism guarantee, produces byte-identical traces and counters to the
// uninterrupted run from the snapshot cycle onward.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/ckpt_format.h"
#include "ckpt/warp_shard.h"
#include "core/ckpt_hook.h"
#include "core/trace_sink.h"
#include "sim/simulation.h"

namespace compass::ckpt {

struct CreateOptions {
  /// Snapshot at the first dispatch point at or after each cycle (sorted).
  std::vector<Cycles> at_cycles;
  /// Periodic snapshots every K cycles (region sampling). Exclusive with
  /// at_cycles.
  Cycles every = 0;
  /// Output path. With several snapshots, each file is `out`.<cycle>.
  std::string out;
  /// Tool bookkeeping stored verbatim (workload selection etc.).
  std::map<std::string, std::string> meta;
};

/// Data-batch dispatch histogram over fixed-width cycle buckets: the
/// event-rate profile a first pass records so region sampling can place
/// snapshot cycles where the events actually are, instead of spacing them
/// evenly over a run whose activity may be front- or back-loaded.
struct EventProfile {
  explicit EventProfile(Cycles bucket_width = 1 << 14)
      : bucket_width(bucket_width) {}
  Cycles bucket_width;
  /// counts[b] = data picks in cycles [b*bucket_width, (b+1)*bucket_width).
  std::vector<std::uint64_t> counts;
  void record(Cycles t) {
    const std::size_t b = static_cast<std::size_t>(t / bucket_width);
    if (b >= counts.size()) counts.resize(b + 1, 0);
    ++counts[b];
  }
  std::uint64_t total() const;
};

/// Split the profiled event stream into `regions` parts of (near-)equal
/// event count and return the `regions - 1` interior boundary cycles, each
/// rounded up to its bucket's end so a snapshot target never lands mid-
/// bucket before the events it is meant to capture. Boundaries are strictly
/// increasing; fewer than `regions - 1` cycles come back when the profile
/// is too concentrated to split further (all remaining mass in one bucket).
std::vector<Cycles> balanced_sample_cycles(const EventProfile& profile,
                                           int regions);

/// First-pass hook for profile-driven region sampling: counts data-batch
/// picks per cycle bucket and otherwise stays invisible — never snapshots,
/// never stops the run, imposes no window boundary.
class EventProfiler final : public core::CkptHook {
 public:
  explicit EventProfiler(Cycles bucket_width = 1 << 14)
      : profile_(bucket_width) {}

  const EventProfile& profile() const { return profile_; }

  // ---- core::CkptHook -----------------------------------------------------

  bool warping() const override { return false; }
  Cycles window_boundary() const override;
  bool at_dispatch_point(core::Backend&, Cycles) override { return false; }
  void on_data_reply(ProcId, Cycles, const core::Reply&) override {}
  void on_control_reply(ProcId, const core::Reply&) override {}
  void on_deferred_reply(ProcId, const core::Reply&) override {}
  void warp_data_reply(ProcId, Cycles&, core::Reply&) override;
  void warp_control_reply(ProcId, core::Reply&) override;
  void warp_deferred_reply(ProcId, core::Reply&) override;
  void on_pick(ProcId, Cycles t, bool is_data) override {
    if (is_data) profile_.record(t);
  }

 private:
  EventProfile profile_;
};

class CheckpointWriter final : public core::CkptHook {
 public:
  CheckpointWriter(const sim::SimulationConfig& cfg, CreateOptions opts);

  /// Bind to the fully-wired simulation (SimulationConfig::post_build).
  void bind(sim::Simulation& sim) { sim_ = &sim; }

  const std::vector<std::string>& written() const { return written_; }

  // ---- core::CkptHook -----------------------------------------------------

  bool warping() const override { return false; }
  Cycles window_boundary() const override { return next_target_; }
  bool at_dispatch_point(core::Backend& backend, Cycles t) override;
  void on_data_reply(ProcId proc, Cycles now_after,
                     const core::Reply& r) override;
  void on_control_reply(ProcId proc, const core::Reply& r) override;
  void on_deferred_reply(ProcId proc, const core::Reply& r) override;
  void warp_data_reply(ProcId proc, Cycles& now_after,
                       core::Reply& r) override;
  void warp_control_reply(ProcId proc, core::Reply& r) override;
  void warp_deferred_reply(ProcId proc, core::Reply& r) override;
  void on_pick(ProcId proc, Cycles t, bool is_data) override;
  void on_rebase(ProcId proc, Cycles base) override;
  void on_control_taken(ProcId proc) override;
  void on_irq_pop(ProcId proc, CpuId cpu, const core::IrqDesc& d) override;
  void on_idle_dispatch(std::uint64_t call, ProcId proc) override;

 private:
  void snapshot(core::Backend& backend, Cycles t, Cycles target);

  sim::SimulationConfig cfg_;
  CreateOptions opts_;
  bool l1_filter_;
  sim::Simulation* sim_ = nullptr;
  util::StateSink log_;
  // Self-serve warp sections, accumulated alongside the legacy log: the
  // backend's pick/rebase/idle-irq decision stream and the per-process
  // reply shards with their global sequence slots (see warp_shard.h).
  // Guarded by tap_mu_: on_irq_pop fires on frontend threads (the backend
  // is parked in wait_all_pending then, so the recorded interleaving is
  // still deterministic, but the appends need a real happens-before edge).
  std::mutex tap_mu_;
  std::vector<SpineRecord> spine_;
  std::map<ProcId, std::vector<ShardRecord>> shards_;
  std::uint64_t seq_ = 0;     ///< next slot in the consumption total order
  std::size_t next_at_ = 0;   ///< cursor into opts_.at_cycles
  Cycles next_target_;        ///< next snapshot cycle; max() when done
  std::vector<std::string> written_;
};

/// How a restore fast-forwards to the snapshot cycle.
enum class WarpMode {
  /// Self-serve when the checkpoint has warp-spine/warp-shards sections and
  /// the host throttle is off; port-paced otherwise.
  kAuto,
  /// Require the sharded self-serve warp; throws when unavailable.
  kSelfServe,
  /// Force the legacy port-paced warp (every batch crosses the EventPort).
  kPortPaced,
};

class CheckpointRestorer final : public core::CkptHook {
 public:
  /// `run_for` > 0 stops the run `run_for` cycles after the install point
  /// (region sampling); 0 runs to completion.
  explicit CheckpointRestorer(CheckpointFile file, Cycles run_for = 0,
                              WarpMode mode = WarpMode::kAuto);

  /// Bind to the fully-wired simulation (SimulationConfig::post_build).
  /// Installs the self-serve warp hub on the Communicator when active.
  void bind(sim::Simulation& sim);

  bool installed() const { return !warping_; }
  Cycles installed_at() const { return installed_at_; }
  /// True when this restore fast-forwards via the sharded self-serve path.
  bool self_serve_active() const { return self_serve_; }

  // ---- core::CkptHook -----------------------------------------------------

  bool warping() const override { return warping_; }
  Cycles window_boundary() const override;
  bool at_dispatch_point(core::Backend& backend, Cycles t) override;
  void on_data_reply(ProcId proc, Cycles now_after,
                     const core::Reply& r) override;
  void on_control_reply(ProcId proc, const core::Reply& r) override;
  void on_deferred_reply(ProcId proc, const core::Reply& r) override;
  void warp_data_reply(ProcId proc, Cycles& now_after,
                       core::Reply& r) override;
  void warp_control_reply(ProcId proc, core::Reply& r) override;
  void warp_deferred_reply(ProcId proc, core::Reply& r) override;
  bool self_serve() const override { return self_serve_ && warping_; }
  bool next_pick(ProcId& proc, Cycles& t, bool& is_data) override;
  Cycles warp_rebase(ProcId proc) override;
  bool warp_idle_pick(std::uint64_t call, ProcId& proc) override;
  bool warp_interrupt_pending(CpuId cpu) override;
  bool warp_failed() const override;
  std::vector<core::Event> warp_take_trace_batch(ProcId proc) override;

 private:
  /// Throws unless the next log record is (`tag`, `proc`).
  void expect(std::uint8_t tag, ProcId proc, const char* what);
  /// Emit trace records for any leading irq-pop markers in the spine: the
  /// walk replays them at their recorded stream positions, since the
  /// popping frontends run decoupled from the trace during the warp.
  void drain_markers();
  void install(core::Backend& backend, Cycles t);
  void verify(core::Backend& backend);

  CheckpointFile file_;
  bool l1_filter_;
  Cycles run_for_;
  WarpMode mode_;
  sim::Simulation* sim_ = nullptr;
  util::StateSource log_;
  bool warping_ = true;
  Cycles installed_at_ = 0;
  Cycles stop_at_;  ///< max() until the install point sets it
  // Self-serve warp: decoded+validated eagerly at construction (a malformed
  // shard fails on the main thread, before any frontend starts), armed in
  // bind() unless the host throttle forces the port-paced fallback.
  std::vector<SpineRecord> spine_;
  std::vector<WarpShard> shards_;
  /// Recorded irq pops per CPU: consumed from the live queues at install,
  /// where the walk's raises accumulated while the frontends' pops replayed
  /// from their shards.
  std::map<CpuId, std::uint64_t> warp_pop_counts_;
  /// Pops drained from the spine so far (walk thread only): the create run's
  /// queue view at any walk point is the live depth minus this count.
  std::map<CpuId, std::uint64_t> drained_pops_;
  bool want_self_serve_ = false;
  bool self_serve_ = false;
  core::TraceSink* trace_ = nullptr;
  std::unique_ptr<WarpServer> server_;
};

/// Rebuild the SimulationConfig a checkpoint was created with.
/// `workers_override` >= 0 replaces backend_workers (a host execution
/// strategy deliberately excluded from the fingerprint).
sim::SimulationConfig config_from(const CheckpointFile& f,
                                  int workers_override = -1);

}  // namespace compass::ckpt
