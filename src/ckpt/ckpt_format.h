// On-disk checkpoint format shared by CheckpointWriter and
// CheckpointRestorer.
//
// Layout (all multi-byte scalars are LEB128 varints unless noted):
//
//   magic            8 bytes  "COMPASCK"
//   version          4 bytes  little-endian u32
//   config_hash      8 bytes  little-endian u64, FNV-1a over the config block
//   config block     varint pair-count, then per pair: varint key, varint
//                    value — the trace codec's key/value pairs, so a
//                    checkpoint carries exactly the machine fingerprint a
//                    trace of the same run would (backend_workers excluded:
//                    a restore may fan out differently than the create run)
//   meta block       varint pair-count, then per pair: string key, string
//                    value (workload selection, tool bookkeeping)
//   target           varint, the cycle the creator was asked to snapshot at
//   quiescent        varint, the dispatch-point cycle actually snapshot
//   nprocs           varint, simulated processes registered at the snapshot
//   section table    varint section-count, then per section:
//                      u8 id, varint payload length, u64 LE FNV-1a of the
//                      payload, payload bytes
//
// Sections split into INSTALL state (warp log, machine, vm, stats,
// breakdown — loaded into the restored simulation) and VERIFY state
// (backend, arenas, kernel, devices, fault — re-derived by the restore warp
// and byte-compared against the recorded dump; see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "trace/trace_format.h"
#include "util/state_io.h"

namespace compass::ckpt {

inline constexpr std::array<std::uint8_t, 8> kMagic = {'C', 'O', 'M', 'P',
                                                       'A', 'S', 'C', 'K'};
inline constexpr std::uint32_t kVersion = 1;

enum class SectionId : std::uint8_t {
  kWarpLog = 1,    ///< reply log covering cycle 0 .. quiescent
  kMachine = 2,    ///< INSTALL: cache/NUMA/snoop state (MemorySystem)
  kVm = 3,         ///< INSTALL: page tables, homes, segments
  kStats = 4,      ///< INSTALL: every counter and histogram
  kBreakdown = 5,  ///< INSTALL: per-CPU per-mode time accounting
  kBackend = 6,    ///< VERIFY: dispatch state (procs, CPUs, channels)
  kArenas = 7,     ///< VERIFY: every arena (free lists + nonzero pages)
  kKernel = 8,     ///< VERIFY: fd tables, sems, fs, tcp/ip
  kDevices = 9,    ///< VERIFY: disk + NIC state
  kFault = 10,     ///< VERIFY: fault-injector stream positions
  kWarpSpine = 11, ///< self-serve warp: backend pick/rebase decision stream
  kWarpShards = 12,///< self-serve warp: per-process reply shards + seq slots
};

const char* to_string(SectionId id);

struct CheckpointFile {
  trace::ConfigPairs config;
  std::map<std::string, std::string> meta;
  Cycles target = 0;
  Cycles quiescent = 0;
  std::uint64_t nprocs = 0;
  std::map<std::uint8_t, std::vector<std::uint8_t>> sections;

  bool has_section(SectionId id) const {
    return sections.contains(static_cast<std::uint8_t>(id));
  }
  /// Throws StateError when the section is absent.
  const std::vector<std::uint8_t>& section(SectionId id) const;
};

std::vector<std::uint8_t> encode_file(const CheckpointFile& f);
/// Throws util::StateError on bad magic, version, hash or truncation.
CheckpointFile decode_file(std::span<const std::uint8_t> bytes);

void write_file(const std::string& path, const CheckpointFile& f);
CheckpointFile read_file(const std::string& path);

}  // namespace compass::ckpt
