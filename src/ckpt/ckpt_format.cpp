#include "ckpt/ckpt_format.h"

#include <cstdio>
#include <memory>

namespace compass::ckpt {

using util::StateError;
using util::StateSink;
using util::StateSource;

const char* to_string(SectionId id) {
  switch (id) {
    case SectionId::kWarpLog: return "warp-log";
    case SectionId::kMachine: return "machine";
    case SectionId::kVm: return "vm";
    case SectionId::kStats: return "stats";
    case SectionId::kBreakdown: return "breakdown";
    case SectionId::kBackend: return "backend";
    case SectionId::kArenas: return "arenas";
    case SectionId::kKernel: return "kernel";
    case SectionId::kDevices: return "devices";
    case SectionId::kFault: return "fault";
    case SectionId::kWarpSpine: return "warp-spine";
    case SectionId::kWarpShards: return "warp-shards";
  }
  return "?";
}

const std::vector<std::uint8_t>& CheckpointFile::section(SectionId id) const {
  const auto it = sections.find(static_cast<std::uint8_t>(id));
  if (it == sections.end())
    throw StateError(std::string("checkpoint is missing section '") +
                     to_string(id) + "'");
  return it->second;
}

std::vector<std::uint8_t> encode_file(const CheckpointFile& f) {
  StateSink config_block;
  config_block.varint(f.config.size());
  for (const auto& [key, value] : f.config) {
    config_block.varint(key);
    config_block.varint(value);
  }

  StateSink out;
  out.raw({kMagic.data(), kMagic.size()});
  out.u32le(kVersion);
  out.u64le(util::fnv1a64({config_block.bytes().data(), config_block.size()}));
  out.raw({config_block.bytes().data(), config_block.size()});
  out.varint(f.meta.size());
  for (const auto& [key, value] : f.meta) {
    out.str(key);
    out.str(value);
  }
  out.varint(f.target);
  out.varint(f.quiescent);
  out.varint(f.nprocs);
  out.varint(f.sections.size());
  for (const auto& [id, payload] : f.sections) {
    out.u8(id);
    out.varint(payload.size());
    out.u64le(util::fnv1a64({payload.data(), payload.size()}));
    out.raw({payload.data(), payload.size()});
  }
  return out.take();
}

CheckpointFile decode_file(std::span<const std::uint8_t> bytes) {
  StateSource src(bytes);
  std::array<std::uint8_t, 8> magic{};
  src.raw(magic);
  if (magic != kMagic) throw StateError("not a COMPASS checkpoint (bad magic)");
  const std::uint32_t version = src.u32le();
  if (version != kVersion)
    throw StateError("unsupported checkpoint version " +
                     std::to_string(version) + " (this build reads " +
                     std::to_string(kVersion) + ")");
  const std::uint64_t want_hash = src.u64le();

  CheckpointFile f;
  const std::size_t config_start = src.pos();
  const std::uint64_t pairs = src.varint();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto key = static_cast<std::uint32_t>(src.varint());
    const std::uint64_t value = src.varint();
    f.config.emplace_back(key, value);
  }
  const std::uint64_t got_hash =
      util::fnv1a64(bytes.subspan(config_start, src.pos() - config_start));
  if (got_hash != want_hash)
    throw StateError("checkpoint config hash mismatch (corrupt header)");

  const std::uint64_t meta_pairs = src.varint();
  for (std::uint64_t i = 0; i < meta_pairs; ++i) {
    std::string key = src.str();
    f.meta[std::move(key)] = src.str();
  }
  f.target = src.varint();
  f.quiescent = src.varint();
  f.nprocs = src.varint();

  const std::uint64_t nsections = src.varint();
  for (std::uint64_t i = 0; i < nsections; ++i) {
    const std::uint8_t id = src.u8();
    const std::uint64_t len = src.varint();
    const std::uint64_t want = src.u64le();
    const std::span<const std::uint8_t> payload = src.bytes(len);
    if (util::fnv1a64(payload) != want)
      throw StateError(std::string("checkpoint section '") +
                       to_string(static_cast<SectionId>(id)) +
                       "' hash mismatch (corrupt payload)");
    if (!f.sections.emplace(id, std::vector<std::uint8_t>(payload.begin(),
                                                          payload.end()))
             .second)
      throw StateError(std::string("duplicate checkpoint section '") +
                       to_string(static_cast<SectionId>(id)) + "'");
  }
  if (!src.at_end())
    throw StateError("checkpoint has " + std::to_string(src.remaining()) +
                     " trailing bytes");
  return f;
}

void write_file(const std::string& path, const CheckpointFile& f) {
  const std::vector<std::uint8_t> bytes = encode_file(f);
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr)
    throw util::SimError("cannot open checkpoint file for writing: " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), fp);
  const bool ok = written == bytes.size() && std::fclose(fp) == 0;
  if (!ok) throw util::SimError("short write to checkpoint file: " + path);
}

CheckpointFile read_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr)
    throw util::SimError("cannot open checkpoint file: " + path);
  std::fseek(fp, 0, SEEK_END);
  const long size = std::ftell(fp);
  std::fseek(fp, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(size > 0 ? static_cast<std::size_t>(size)
                                           : 0);
  const std::size_t got = bytes.empty()
                              ? 0
                              : std::fread(bytes.data(), 1, bytes.size(), fp);
  std::fclose(fp);
  if (got != bytes.size())
    throw util::SimError("short read from checkpoint file: " + path);
  return decode_file(bytes);
}

}  // namespace compass::ckpt
