#include "ckpt/warp_shard.h"

#include <chrono>
#include <string>

#include "mem/machine.h"
#include "util/check.h"

namespace compass::ckpt {

namespace {

using util::StateError;
using util::StateSink;
using util::StateSource;

// One trace-batch copy per shard record at most, but a frontend far ahead of
// the backend walk parks once this many copies are queued.
constexpr std::size_t kTraceQueueCap = 256;

void append_shard_record(StateSink& sink, const ShardRecord& rec,
                         bool l1_filter) {
  sink.u8(rec.tag);
  if (rec.tag == kShardIrqPop) {
    sink.svarint(rec.cpu);
    sink.varint(static_cast<std::uint64_t>(rec.irq.irq));
    sink.varint(rec.irq.payload);
    sink.varint(rec.irq.raised_at);
    return;
  }
  sink.varint(rec.seq);
  if (rec.tag != kShardData) return;
  sink.varint(rec.resume_time);
  sink.svarint(rec.cpu);
  sink.u8(rec.interrupt_pending ? 1 : 0);
  if (l1_filter) {
    sink.varint(rec.l1_gen);
    mem::ckpt_save_teach(sink, rec.teach);
  }
}

ShardRecord read_shard_record(StateSource& src, bool l1_filter) {
  ShardRecord rec;
  rec.tag = src.u8();
  if (rec.tag != kShardData && rec.tag != kShardPost &&
      rec.tag != kShardIrqPop)
    throw StateError("warp shard: unknown record tag " +
                     std::to_string(rec.tag));
  if (rec.tag == kShardIrqPop) {
    rec.cpu = static_cast<CpuId>(src.svarint());
    const std::uint64_t irq = src.varint();
    if (irq >= static_cast<std::uint64_t>(core::Irq::kCount))
      throw StateError("warp shard: popped descriptor names unknown irq " +
                       std::to_string(irq));
    rec.irq.irq = static_cast<core::Irq>(irq);
    rec.irq.payload = src.varint();
    rec.irq.raised_at = src.varint();
    return rec;
  }
  rec.seq = src.varint();
  if (rec.tag != kShardData) return rec;
  rec.resume_time = src.varint();
  rec.cpu = static_cast<CpuId>(src.svarint());
  rec.interrupt_pending = src.u8() != 0;
  if (l1_filter) {
    rec.l1_gen = src.varint();
    rec.teach = mem::ckpt_load_teach(src);
  }
  return rec;
}

}  // namespace

// ------------------------------------------------------------------- codec

std::vector<std::uint8_t> encode_spine(std::span<const SpineRecord> records) {
  StateSink sink;
  for (const SpineRecord& rec : records) {
    sink.u8(rec.tag);
    sink.varint(static_cast<std::uint64_t>(rec.proc));
    sink.varint(rec.value);
  }
  return sink.take();
}

std::vector<SpineRecord> decode_spine(std::span<const std::uint8_t> bytes) {
  StateSource src(bytes);
  std::vector<SpineRecord> records;
  while (!src.at_end()) {
    SpineRecord rec;
    rec.tag = src.u8();
    if (rec.tag != kSpinePickData && rec.tag != kSpinePickControl &&
        rec.tag != kSpineRebase && rec.tag != kSpineIrqPop &&
        rec.tag != kSpineIdleIrq)
      throw StateError("warp spine: unknown record tag " +
                       std::to_string(rec.tag));
    rec.proc = static_cast<ProcId>(src.varint());
    rec.value = src.varint();
    records.push_back(rec);
  }
  return records;
}

std::vector<std::uint8_t> encode_shards(std::span<const WarpShard> shards,
                                        bool l1_filter) {
  StateSink sink;
  sink.varint(shards.size());
  for (const WarpShard& shard : shards) {
    sink.varint(static_cast<std::uint64_t>(shard.proc));
    sink.varint(shard.records.size());
    StateSink payload;
    for (const ShardRecord& rec : shard.records)
      append_shard_record(payload, rec, l1_filter);
    sink.blob(payload.bytes());
  }
  return sink.take();
}

std::vector<WarpShard> decode_shards(std::span<const std::uint8_t> bytes,
                                     bool l1_filter) {
  StateSource src(bytes);
  std::vector<WarpShard> shards;
  const std::uint64_t nshards = src.varint();
  for (std::uint64_t i = 0; i < nshards; ++i) {
    WarpShard shard;
    shard.proc = static_cast<ProcId>(src.varint());
    const std::uint64_t nrecords = src.varint();
    const std::span<const std::uint8_t> payload = src.blob();
    StateSource body(payload);
    shard.records.reserve(static_cast<std::size_t>(nrecords));
    for (std::uint64_t r = 0; r < nrecords; ++r)
      shard.records.push_back(read_shard_record(body, l1_filter));
    if (!body.at_end())
      throw StateError("warp shard for proc " + std::to_string(shard.proc) +
                       " has " + std::to_string(body.remaining()) +
                       " bytes beyond its declared records");
    shards.push_back(std::move(shard));
  }
  if (!src.at_end())
    throw StateError("warp shard section has " +
                     std::to_string(src.remaining()) + " trailing bytes");
  return shards;
}

void validate_shards(std::span<const WarpShard> shards, std::uint64_t nprocs) {
  // Only data replies and control posts occupy ticket slots; irq-pop
  // records ride along in per-proc program order without one.
  std::uint64_t total = 0;
  for (const WarpShard& shard : shards)
    for (const ShardRecord& rec : shard.records)
      if (rec.tag != kShardIrqPop) ++total;
  std::vector<bool> seen_seq(static_cast<std::size_t>(total), false);
  std::vector<bool> seen_proc(static_cast<std::size_t>(nprocs), false);
  for (const WarpShard& shard : shards) {
    if (shard.proc < 0 || static_cast<std::uint64_t>(shard.proc) >= nprocs)
      throw StateError("warp shard names proc " + std::to_string(shard.proc) +
                       ", but the checkpoint has " + std::to_string(nprocs) +
                       " processes");
    if (seen_proc[static_cast<std::size_t>(shard.proc)])
      throw StateError("duplicate warp shard for proc " +
                       std::to_string(shard.proc));
    seen_proc[static_cast<std::size_t>(shard.proc)] = true;
    std::uint64_t prev = 0;
    bool first = true;
    for (const ShardRecord& rec : shard.records) {
      if (rec.tag == kShardIrqPop) {
        if (rec.cpu < 0)
          throw StateError("warp shard for proc " +
                           std::to_string(shard.proc) +
                           " records an irq pop on negative cpu");
        continue;
      }
      if (!first && rec.seq <= prev)
        throw StateError("warp shard for proc " + std::to_string(shard.proc) +
                         " is out of program order: seq " +
                         std::to_string(rec.seq) + " after " +
                         std::to_string(prev));
      first = false;
      prev = rec.seq;
      if (rec.seq >= total ||
          seen_seq[static_cast<std::size_t>(rec.seq)])
        throw StateError("warp shards do not tile the sequence space: seq " +
                         std::to_string(rec.seq) +
                         (rec.seq >= total ? " out of range" : " duplicated"));
      seen_seq[static_cast<std::size_t>(rec.seq)] = true;
    }
  }
  // total records and no duplicates imply every slot 0..total-1 is covered.
}

// ------------------------------------------------------------- WarpServer

WarpServer::WarpServer(std::vector<SpineRecord> spine,
                       std::vector<WarpShard> shards, std::uint64_t nprocs,
                       bool trace_copies)
    : spine_(std::move(spine)),
      shards_(static_cast<std::size_t>(nprocs)),
      trace_copies_(trace_copies) {
  for (WarpShard& shard : shards)
    shards_[static_cast<std::size_t>(shard.proc)].records =
        std::move(shard.records);
}

void WarpServer::wait_turn(std::uint64_t seq) {
  // Brief spin first: at high event rates the predecessor action retires
  // within the window and no sleep/wake round trip is paid.
  for (int i = 0; i < 4096; ++i) {
    if (ticket_.load(std::memory_order_acquire) >= seq || poisoned()) return;
  }
  std::unique_lock lock(ticket_mu_);
  ticket_cv_.wait(lock, [&] {
    return ticket_.load(std::memory_order_relaxed) >= seq ||
           poisoned_.load(std::memory_order_relaxed);
  });
}

void WarpServer::advance_turn() {
  {
    std::lock_guard lock(ticket_mu_);
    ticket_.fetch_add(1, std::memory_order_release);
  }
  ticket_cv_.notify_all();
}

bool WarpServer::warp_post(ProcId proc, std::span<const core::Event> batch,
                           core::Reply& out) {
  if (proc < 0 || static_cast<std::size_t>(proc) >= shards_.size())
    return false;
  Shard& sh = shards_[static_cast<std::size_t>(proc)];
  // Shard exhausted: the create run never consumed this post before the
  // snapshot — it is the proc's final pending batch. Post it live; the walk
  // picks it up after the spine runs dry.
  if (sh.cursor >= sh.records.size()) return false;
  const ShardRecord& rec = sh.records[sh.cursor];
  const core::EventKind kind = batch.front().kind;
  const bool is_data = kind == core::EventKind::kMemRef ||
                       kind == core::EventKind::kYield;
  if (rec.tag == kShardIrqPop) {
    abort_waiters();
    throw StateError("self-serve warp diverged: proc " + std::to_string(proc) +
                     " posted a batch where its shard records an interrupt "
                     "pop");
  }
  if (is_data != (rec.tag == kShardData)) {
    abort_waiters();
    throw StateError("self-serve warp diverged: proc " + std::to_string(proc) +
                     " posted a " + std::string(is_data ? "data" : "control") +
                     " batch where its shard records a " +
                     (rec.tag == kShardData ? "data reply" : "control post"));
  }
  wait_turn(rec.seq);
  if (poisoned()) {
    out = core::Reply{};
    out.aborted = true;
    return true;
  }
  ++sh.cursor;
  if (rec.tag == kShardPost) {
    // Control events cross the real port (their handlers mutate backend
    // state the walk rebuilds live); the ticket only pins the post's slot in
    // the total order. Advancing before the physical post is safe: this
    // thread's prior writes are release-ordered by the ticket store, and the
    // backend/blocked-waiter ordering still flows through the port atomics.
    advance_turn();
    return false;
  }
  if (trace_copies_) {
    {
      std::unique_lock lock(sh.mu);
      sh.cv.wait(lock, [&] {
        return poisoned_.load(std::memory_order_relaxed) ||
               sh.trace_q.size() < kTraceQueueCap;
      });
      if (poisoned_.load(std::memory_order_relaxed)) {
        out = core::Reply{};
        out.aborted = true;
        return true;
      }
      sh.trace_q.emplace_back(batch.begin(), batch.end());
    }
    sh.cv.notify_all();
  }
  out = core::Reply{};
  out.resume_time = rec.resume_time;
  out.cpu = rec.cpu;
  out.interrupt_pending = rec.interrupt_pending;
  out.l1_gen = rec.l1_gen;
  out.teach = rec.teach;
  advance_turn();
  return true;
}

bool WarpServer::warp_pop(ProcId proc, CpuId cpu,
                          std::optional<core::IrqDesc>& out) {
  if (proc < 0 || static_cast<std::size_t>(proc) >= shards_.size())
    return false;
  Shard& sh = shards_[static_cast<std::size_t>(proc)];
  out.reset();
  // Cursor at a non-pop record (or at the shard's end): the create run's
  // pop at this point of the proc's re-execution came up dry, ending its
  // handler loop. Serving "empty" — rather than popping the live queue —
  // keeps the walk's concurrently raised descriptors intact for the
  // horizon reconciliation (CheckpointRestorer::install).
  if (sh.cursor >= sh.records.size()) return true;
  const ShardRecord& rec = sh.records[sh.cursor];
  if (rec.tag != kShardIrqPop) return true;
  if (rec.cpu != cpu) {
    abort_waiters();
    throw StateError("self-serve warp diverged: proc " + std::to_string(proc) +
                     " popped cpu " + std::to_string(cpu) +
                     " where its shard records a pop on cpu " +
                     std::to_string(rec.cpu));
  }
  out = rec.irq;
  ++sh.cursor;
  return true;
}

void WarpServer::abort_waiters() {
  {
    std::lock_guard lock(ticket_mu_);
    poisoned_.store(true, std::memory_order_release);
  }
  ticket_cv_.notify_all();
  for (Shard& sh : shards_) {
    { std::lock_guard lock(sh.mu); }
    sh.cv.notify_all();
  }
}

bool WarpServer::next_marker(ProcId& proc, CpuId& cpu) {
  if (spine_cursor_ >= spine_.size()) return false;
  const SpineRecord& rec = spine_[spine_cursor_];
  if (rec.tag != kSpineIrqPop) return false;
  ++spine_cursor_;
  proc = rec.proc;
  cpu = static_cast<CpuId>(rec.value);
  return true;
}

bool WarpServer::next_pick(ProcId& proc, Cycles& t, bool& is_data) {
  if (spine_cursor_ >= spine_.size()) return false;
  const SpineRecord& rec = spine_[spine_cursor_];
  if (rec.tag != kSpinePickData && rec.tag != kSpinePickControl)
    throw StateError("warp spine diverged: record tag " +
                     std::to_string(rec.tag) + " for proc " +
                     std::to_string(rec.proc) +
                     " is due where the walk reached a pick");
  ++spine_cursor_;
  proc = rec.proc;
  t = rec.value;
  is_data = rec.tag == kSpinePickData;
  return true;
}

bool WarpServer::idle_pick(std::uint64_t call, ProcId& proc) {
  if (spine_cursor_ >= spine_.size()) return false;
  const SpineRecord& rec = spine_[spine_cursor_];
  if (rec.tag != kSpineIdleIrq || rec.value != call) return false;
  ++spine_cursor_;
  proc = rec.proc;
  return true;
}

Cycles WarpServer::take_rebase(ProcId proc) {
  if (spine_cursor_ >= spine_.size())
    throw StateError("warp spine exhausted where a rebase record for proc " +
                     std::to_string(proc) + " is due");
  const SpineRecord& rec = spine_[spine_cursor_];
  if (rec.tag != kSpineRebase || rec.proc != proc)
    throw StateError("warp spine diverged: expected a rebase record for proc " +
                     std::to_string(proc) + ", found tag " +
                     std::to_string(rec.tag) + " for proc " +
                     std::to_string(rec.proc));
  ++spine_cursor_;
  return rec.value;
}

std::vector<core::Event> WarpServer::take_trace_batch(ProcId proc) {
  COMPASS_CHECK_MSG(proc >= 0 && static_cast<std::size_t>(proc) < shards_.size(),
                    "trace-batch pop for unknown proc " << proc);
  Shard& sh = shards_[static_cast<std::size_t>(proc)];
  std::vector<core::Event> out;
  {
    std::unique_lock lock(sh.mu);
    const bool got = sh.cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return poisoned_.load(std::memory_order_relaxed) || !sh.trace_q.empty();
    });
    if (poisoned_.load(std::memory_order_relaxed))
      throw StateError("self-serve warp aborted while recording the batch of "
                       "proc " +
                       std::to_string(proc));
    if (!got)
      throw StateError("self-serve warp stalled: no traced batch copy from "
                       "proc " +
                       std::to_string(proc) + " (divergent replay?)");
    out = std::move(sh.trace_q.front());
    sh.trace_q.pop_front();
  }
  sh.cv.notify_all();
  return out;
}

}  // namespace compass::ckpt
