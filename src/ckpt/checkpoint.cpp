#include "ckpt/checkpoint.h"

#include <algorithm>
#include <limits>

#include "mem/machine.h"
#include "trace/config_codec.h"

namespace compass::ckpt {

namespace {

using util::StateError;
using util::StateSink;
using util::StateSource;

constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

constexpr std::uint8_t kLogData = 1;
constexpr std::uint8_t kLogControl = 2;
constexpr std::uint8_t kLogDeferred = 3;

// ---- VERIFY-section dumpers, shared by create and restore so both sides
// serialize byte-identically -------------------------------------------------

std::vector<std::uint8_t> dump_backend(core::Backend& backend) {
  StateSink sink;
  backend.ckpt_dump_state(sink);
  return sink.take();
}

std::vector<std::uint8_t> dump_arenas(sim::Simulation& sim) {
  StateSink sink;
  std::size_t count = 0;
  sim.mem().for_each([&count](const mem::Arena&) { ++count; });
  sink.varint(count);
  sim.mem().for_each([&sink](const mem::Arena& a) { a.ckpt_dump(sink); });
  return sink.take();
}

std::vector<std::uint8_t> dump_kernel(sim::Simulation& sim) {
  StateSink sink;
  sim.kernel().ckpt_dump(sink);
  return sink.take();
}

std::vector<std::uint8_t> dump_devices(sim::Simulation& sim) {
  StateSink sink;
  sim.devices().ckpt_dump(sink);
  return sink.take();
}

std::vector<std::uint8_t> dump_fault(sim::Simulation& sim) {
  StateSink sink;
  if (sim.fault_injector() != nullptr) sim.fault_injector()->ckpt_dump(sink);
  return sink.take();
}

/// First byte offset at which the two dumps differ (for diagnostics).
std::size_t first_diff(const std::vector<std::uint8_t>& a,
                       const std::vector<std::uint8_t>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return i;
  return n;
}

void check_section(SectionId id, const std::vector<std::uint8_t>& recorded,
                   const std::vector<std::uint8_t>& rebuilt) {
  if (recorded == rebuilt) return;
  throw StateError(
      std::string("restore verification failed: section '") + to_string(id) +
      "' differs at byte " + std::to_string(first_diff(recorded, rebuilt)) +
      " (recorded " + std::to_string(recorded.size()) + " bytes, rebuilt " +
      std::to_string(rebuilt.size()) + ")");
}

}  // namespace

// ---------------------------------------------------------------- profiler

std::uint64_t EventProfile::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  return sum;
}

std::vector<Cycles> balanced_sample_cycles(const EventProfile& profile,
                                           int regions) {
  COMPASS_CHECK_MSG(regions >= 2, "balanced sampling needs >= 2 regions");
  const std::uint64_t total = profile.total();
  std::vector<Cycles> out;
  if (total == 0) return out;
  // Walk the histogram once, emitting a boundary at each bucket end whose
  // cumulative count first reaches the next k/regions quantile. One bucket
  // can satisfy several quantiles (a spike); it still contributes at most
  // one boundary, keeping the result strictly increasing.
  std::uint64_t cum = 0;
  int k = 1;
  for (std::size_t b = 0; b < profile.counts.size() && k < regions; ++b) {
    cum += profile.counts[b];
    bool hit = false;
    while (k < regions &&
           cum * static_cast<std::uint64_t>(regions) >=
               total * static_cast<std::uint64_t>(k)) {
      ++k;
      hit = true;
    }
    if (hit && cum < total)
      out.push_back(static_cast<Cycles>(b + 1) * profile.bucket_width);
  }
  return out;
}

Cycles EventProfiler::window_boundary() const { return kNever; }

void EventProfiler::warp_data_reply(ProcId, Cycles&, core::Reply&) {
  COMPASS_CHECK_MSG(false, "EventProfiler never warps");
}
void EventProfiler::warp_control_reply(ProcId, core::Reply&) {
  COMPASS_CHECK_MSG(false, "EventProfiler never warps");
}
void EventProfiler::warp_deferred_reply(ProcId, core::Reply&) {
  COMPASS_CHECK_MSG(false, "EventProfiler never warps");
}

// ------------------------------------------------------------------ writer

CheckpointWriter::CheckpointWriter(const sim::SimulationConfig& cfg,
                                   CreateOptions opts)
    : cfg_(cfg), opts_(std::move(opts)), l1_filter_(cfg.core.l1_filter) {
  COMPASS_CHECK_MSG(opts_.every == 0 || opts_.at_cycles.empty(),
                    "checkpoint targets: --every and --at are exclusive");
  COMPASS_CHECK_MSG(opts_.every > 0 || !opts_.at_cycles.empty(),
                    "checkpoint writer needs at least one target cycle");
  std::sort(opts_.at_cycles.begin(), opts_.at_cycles.end());
  next_target_ = opts_.every > 0 ? opts_.every : opts_.at_cycles.front();
}

bool CheckpointWriter::at_dispatch_point(core::Backend& backend, Cycles t) {
  if (t < next_target_) return false;
  snapshot(backend, t, next_target_);
  // Advance strictly past t: the batch about to dispatch at t must fall
  // below the next window boundary, or the windowed loop would never make
  // progress past a trigger.
  if (opts_.every > 0) {
    while (next_target_ <= t) next_target_ += opts_.every;
  } else {
    while (next_at_ < opts_.at_cycles.size() &&
           opts_.at_cycles[next_at_] <= t)
      ++next_at_;
    next_target_ =
        next_at_ < opts_.at_cycles.size() ? opts_.at_cycles[next_at_] : kNever;
  }
  return false;
}

void CheckpointWriter::snapshot(core::Backend& backend, Cycles t,
                                Cycles target) {
  COMPASS_CHECK_MSG(sim_ != nullptr,
                    "checkpoint writer was never bound to a Simulation "
                    "(SimulationConfig::post_build)");
  CheckpointFile f;
  f.config = trace::encode_config(cfg_);
  f.meta = opts_.meta;
  f.target = target;
  f.quiescent = t;
  f.nprocs = backend.num_procs();

  auto put = [&f](SectionId id, std::vector<std::uint8_t> payload) {
    f.sections[static_cast<std::uint8_t>(id)] = std::move(payload);
  };
  put(SectionId::kWarpLog, log_.bytes());  // accumulated prefix, copied

  // Self-serve warp sections, always emitted alongside the legacy log so a
  // restore can pick either path (and tests can compare them bit-for-bit).
  {
    std::lock_guard lock(tap_mu_);
    put(SectionId::kWarpSpine, encode_spine(spine_));
    std::vector<WarpShard> shards;
    shards.reserve(shards_.size());
    for (const auto& [proc, records] : shards_)
      if (!records.empty()) shards.push_back(WarpShard{proc, records});
    put(SectionId::kWarpShards, encode_shards(shards, l1_filter_));
  }

  StateSink machine;
  sim_->machine().ckpt_save(machine);
  put(SectionId::kMachine, machine.take());
  StateSink vm;
  sim_->vm().ckpt_save(vm);
  put(SectionId::kVm, vm.take());
  StateSink stats;
  backend.stats().ckpt_save(stats);
  put(SectionId::kStats, stats.take());
  StateSink breakdown;
  backend.time_breakdown().ckpt_save(breakdown);
  put(SectionId::kBreakdown, breakdown.take());

  put(SectionId::kBackend, dump_backend(backend));
  put(SectionId::kArenas, dump_arenas(*sim_));
  put(SectionId::kKernel, dump_kernel(*sim_));
  put(SectionId::kDevices, dump_devices(*sim_));
  put(SectionId::kFault, dump_fault(*sim_));

  const bool single = opts_.every == 0 && opts_.at_cycles.size() == 1;
  const std::string path =
      single ? opts_.out : opts_.out + "." + std::to_string(t);
  write_file(path, f);
  written_.push_back(path);
}

void CheckpointWriter::on_data_reply(ProcId proc, Cycles now_after,
                                     const core::Reply& r) {
  log_.u8(kLogData);
  log_.varint(static_cast<std::uint64_t>(proc));
  log_.varint(now_after);
  log_.varint(r.resume_time);
  if (l1_filter_) {
    log_.varint(r.l1_gen);
    mem::ckpt_save_teach(log_, r.teach);
  }
  // Shard twin of the record: everything the frontend needs to serve itself
  // this reply during a self-serve warp, pinned to its slot in the backend's
  // consumption total order.
  ShardRecord rec;
  rec.tag = kShardData;
  rec.resume_time = r.resume_time;
  rec.cpu = r.cpu;
  rec.interrupt_pending = r.interrupt_pending;
  if (l1_filter_) {
    rec.l1_gen = r.l1_gen;
    rec.teach = r.teach;
  }
  std::lock_guard lock(tap_mu_);
  rec.seq = seq_++;
  shards_[proc].push_back(rec);
}

void CheckpointWriter::on_pick(ProcId proc, Cycles t, bool is_data) {
  std::lock_guard lock(tap_mu_);
  spine_.push_back(
      SpineRecord{is_data ? kSpinePickData : kSpinePickControl, proc, t});
}

void CheckpointWriter::on_rebase(ProcId proc, Cycles base) {
  std::lock_guard lock(tap_mu_);
  spine_.push_back(SpineRecord{kSpineRebase, proc, base});
}

void CheckpointWriter::on_control_taken(ProcId proc) {
  ShardRecord rec;
  rec.tag = kShardPost;
  std::lock_guard lock(tap_mu_);
  rec.seq = seq_++;
  shards_[proc].push_back(rec);
}

void CheckpointWriter::on_irq_pop(ProcId proc, CpuId cpu,
                                  const core::IrqDesc& d) {
  // Fires on the popping frontend's host thread while the backend is parked
  // in wait_all_pending, so the spine position is still deterministic.
  ShardRecord rec;
  rec.tag = kShardIrqPop;
  rec.cpu = cpu;
  rec.irq = d;
  std::lock_guard lock(tap_mu_);
  spine_.push_back(SpineRecord{kSpineIrqPop, proc, static_cast<Cycles>(cpu)});
  shards_[proc].push_back(rec);
}

void CheckpointWriter::on_idle_dispatch(std::uint64_t call, ProcId proc) {
  std::lock_guard lock(tap_mu_);
  spine_.push_back(SpineRecord{kSpineIdleIrq, proc, call});
}

void CheckpointWriter::on_control_reply(ProcId proc, const core::Reply& r) {
  log_.u8(kLogControl);
  log_.varint(static_cast<std::uint64_t>(proc));
  if (l1_filter_) log_.varint(r.l1_gen);
}

void CheckpointWriter::on_deferred_reply(ProcId proc, const core::Reply& r) {
  log_.u8(kLogDeferred);
  log_.varint(static_cast<std::uint64_t>(proc));
  if (l1_filter_) log_.varint(r.l1_gen);
}

void CheckpointWriter::warp_data_reply(ProcId, Cycles&, core::Reply&) {
  COMPASS_CHECK_MSG(false, "create-mode checkpoint hook cannot warp");
}
void CheckpointWriter::warp_control_reply(ProcId, core::Reply&) {
  COMPASS_CHECK_MSG(false, "create-mode checkpoint hook cannot warp");
}
void CheckpointWriter::warp_deferred_reply(ProcId, core::Reply&) {
  COMPASS_CHECK_MSG(false, "create-mode checkpoint hook cannot warp");
}

// ---------------------------------------------------------------- restorer

CheckpointRestorer::CheckpointRestorer(CheckpointFile file, Cycles run_for,
                                       WarpMode mode)
    : file_(std::move(file)),
      l1_filter_([this] {
        std::uint64_t v = 0;
        return trace::config_lookup(file_.config, trace::ConfigKey::kL1Filter,
                                    v) &&
               v != 0;
      }()),
      run_for_(run_for),
      mode_(mode),
      log_({file_.section(SectionId::kWarpLog).data(),
            file_.section(SectionId::kWarpLog).size()}),
      stop_at_(kNever) {
  const bool have = file_.has_section(SectionId::kWarpSpine) &&
                    file_.has_section(SectionId::kWarpShards);
  if (mode_ == WarpMode::kSelfServe && !have)
    throw StateError(
        "checkpoint has no self-serve warp sections "
        "(warp-spine/warp-shards); created by an older writer?");
  if (mode_ == WarpMode::kPortPaced || !have) return;
  // Decode + validate eagerly: a truncated or inconsistent shard set fails
  // here, on the main thread, before any frontend starts replaying.
  const std::vector<std::uint8_t>& spine_bytes =
      file_.section(SectionId::kWarpSpine);
  spine_ = decode_spine({spine_bytes.data(), spine_bytes.size()});
  for (const SpineRecord& rec : spine_)
    if (rec.proc < 0 || static_cast<std::uint64_t>(rec.proc) >= file_.nprocs)
      throw StateError("warp spine names proc " + std::to_string(rec.proc) +
                       ", but the checkpoint has " +
                       std::to_string(file_.nprocs) + " processes");
  const std::vector<std::uint8_t>& shard_bytes =
      file_.section(SectionId::kWarpShards);
  shards_ = decode_shards({shard_bytes.data(), shard_bytes.size()}, l1_filter_);
  validate_shards(shards_, file_.nprocs);
  for (const WarpShard& shard : shards_)
    for (const ShardRecord& rec : shard.records)
      if (rec.tag == kShardIrqPop) ++warp_pop_counts_[rec.cpu];
  want_self_serve_ = true;
}

void CheckpointRestorer::bind(sim::Simulation& sim) {
  sim_ = &sim;
  if (!want_self_serve_) return;
  if (sim.config().core.host_cpus > 0) {
    // Host throttle on: frontend threads hold host-CPU permits for their
    // whole lifetime, so parking them on the sequence ticket would starve
    // the permit pool the backend needs. Fall back to the port-paced warp.
    if (mode_ == WarpMode::kSelfServe)
      throw StateError(
          "self-serve warp requires the host throttle off "
          "(core.host_cpus == 0); use the port-paced warp instead");
    want_self_serve_ = false;
    return;
  }
  trace_ = sim.config().trace_sink;
  server_ = std::make_unique<WarpServer>(
      std::move(spine_), std::move(shards_), file_.nprocs,
      /*trace_copies=*/trace_ != nullptr);
  sim.communicator().set_warp_hub(server_.get());
  self_serve_ = true;
}

Cycles CheckpointRestorer::window_boundary() const {
  return warping_ ? kNever : stop_at_;
}

bool CheckpointRestorer::at_dispatch_point(core::Backend& backend, Cycles t) {
  if (warping_) {
    // Not every dispatch consumes a log record (a kBlock that blocks and a
    // kStart defer their replies), so log exhaustion alone does not mark
    // the install point. The writer snapshotted at the first dispatch-point
    // visit whose clock reached the quiescent cycle; warp until the same
    // visit, then require the log to be exactly consumed.
    if (t < file_.quiescent) return false;
    if (t > file_.quiescent)
      throw StateError("restore diverged: dispatch point at cycle " +
                       std::to_string(t) +
                       " overshot the snapshot's quiescent cycle " +
                       std::to_string(file_.quiescent));
    if (!log_.at_end())
      throw StateError("restore diverged: " +
                       std::to_string(log_.remaining()) +
                       " warp-log bytes left over at the snapshot's "
                       "quiescent cycle " +
                       std::to_string(file_.quiescent));
    install(backend, t);
    verify(backend);
    warping_ = false;
    installed_at_ = t;
    if (run_for_ > 0) stop_at_ = t + run_for_;
    return false;
  }
  return t >= stop_at_;
}

void CheckpointRestorer::install(core::Backend& backend, Cycles t) {
  COMPASS_CHECK_MSG(sim_ != nullptr,
                    "checkpoint restorer was never bound to a Simulation "
                    "(SimulationConfig::post_build)");
  if (file_.nprocs != backend.num_procs())
    throw StateError("restore mismatch: checkpoint has " +
                     std::to_string(file_.nprocs) + " processes, this run " +
                     std::to_string(backend.num_procs()));
  // Quiescent point: every frontend is past its last shard record and parked
  // in a real port wait, so the hub can be unhooked — the simulation
  // continues fully live from here.
  if (self_serve_) {
    sim_->communicator().set_warp_hub(nullptr);
    // The walk raised interrupts into the live CpuState queues while the
    // frontends' pops replayed from their shards; consume the recorded pop
    // count per CPU so the queues (and request flags, which pop() clears on
    // drain) match the create run's dump bit-for-bit.
    for (const auto& [cpu, count] : warp_pop_counts_) {
      core::CpuState& cs = sim_->communicator().cpu_state(cpu);
      for (std::uint64_t i = 0; i < count; ++i)
        if (!cs.pop().has_value())
          throw StateError("restore diverged: cpu " + std::to_string(cpu) +
                           " raised fewer interrupts during the warp than "
                           "the create run popped");
    }
  }
  (void)t;
  auto load = [this](SectionId id, auto&& fn) {
    const std::vector<std::uint8_t>& bytes = file_.section(id);
    StateSource src({bytes.data(), bytes.size()});
    fn(src);
    if (!src.at_end())
      throw StateError(std::string("checkpoint section '") + to_string(id) +
                       "' has " + std::to_string(src.remaining()) +
                       " trailing bytes");
  };
  load(SectionId::kMachine,
       [this](StateSource& s) { sim_->machine().ckpt_load(s); });
  load(SectionId::kVm, [this](StateSource& s) { sim_->vm().ckpt_load(s); });
  load(SectionId::kStats,
       [&backend](StateSource& s) { backend.stats().ckpt_load(s); });
  load(SectionId::kBreakdown,
       [&backend](StateSource& s) { backend.time_breakdown().ckpt_load(s); });
}

void CheckpointRestorer::verify(core::Backend& backend) {
  check_section(SectionId::kBackend, file_.section(SectionId::kBackend),
                dump_backend(backend));
  check_section(SectionId::kArenas, file_.section(SectionId::kArenas),
                dump_arenas(*sim_));
  check_section(SectionId::kKernel, file_.section(SectionId::kKernel),
                dump_kernel(*sim_));
  check_section(SectionId::kDevices, file_.section(SectionId::kDevices),
                dump_devices(*sim_));
  check_section(SectionId::kFault, file_.section(SectionId::kFault),
                dump_fault(*sim_));
}

void CheckpointRestorer::on_data_reply(ProcId, Cycles, const core::Reply&) {}
void CheckpointRestorer::on_control_reply(ProcId, const core::Reply&) {}
void CheckpointRestorer::on_deferred_reply(ProcId, const core::Reply&) {}

void CheckpointRestorer::expect(std::uint8_t tag, ProcId proc,
                                const char* what) {
  if (log_.at_end())
    throw StateError(std::string("warp log exhausted before the ") + what +
                     " reply of proc " + std::to_string(proc) +
                     " — restored run diverged from the create run");
  const std::uint8_t got = log_.u8();
  if (got != tag)
    throw StateError(std::string("warp log diverged: expected a ") + what +
                     " record for proc " + std::to_string(proc) +
                     ", log has record tag " + std::to_string(got));
  const auto p = static_cast<ProcId>(log_.varint());
  if (p != proc)
    throw StateError(std::string("warp log diverged: ") + what +
                     " reply for proc " + std::to_string(proc) +
                     ", log recorded proc " + std::to_string(p));
}

void CheckpointRestorer::warp_data_reply(ProcId proc, Cycles& now_after,
                                         core::Reply& r) {
  expect(kLogData, proc, "data");
  now_after = log_.varint();
  r.resume_time = log_.varint();
  if (l1_filter_) {
    r.l1_gen = log_.varint();
    r.teach = mem::ckpt_load_teach(log_);
  }
}

void CheckpointRestorer::warp_control_reply(ProcId proc, core::Reply& r) {
  expect(kLogControl, proc, "control");
  if (l1_filter_) r.l1_gen = log_.varint();
}

void CheckpointRestorer::warp_deferred_reply(ProcId proc, core::Reply& r) {
  expect(kLogDeferred, proc, "deferred");
  if (l1_filter_) r.l1_gen = log_.varint();
}

void CheckpointRestorer::drain_markers() {
  ProcId proc = kNoProc;
  CpuId cpu = kNoCpu;
  while (server_->next_marker(proc, cpu)) {
    ++drained_pops_[cpu];
    if (trace_ != nullptr) trace_->on_irq_pop(proc, cpu);
  }
}

bool CheckpointRestorer::next_pick(ProcId& proc, Cycles& t, bool& is_data) {
  drain_markers();
  return server_->next_pick(proc, t, is_data);
}

Cycles CheckpointRestorer::warp_rebase(ProcId proc) {
  drain_markers();
  return server_->take_rebase(proc);
}

bool CheckpointRestorer::warp_idle_pick(std::uint64_t call, ProcId& proc) {
  drain_markers();
  return server_->idle_pick(call, proc);
}

bool CheckpointRestorer::warp_interrupt_pending(CpuId cpu) {
  // Reply construction happens between two spine records, and no frontend
  // can pop between the preceding pick and this read (they are all parked or
  // paced behind the ticket), so the drained-marker count is exact here.
  const core::CpuState& cs = sim_->communicator().cpu_state(cpu);
  if (!cs.interrupts_enabled()) return false;
  const auto it = drained_pops_.find(cpu);
  const std::uint64_t popped = it == drained_pops_.end() ? 0 : it->second;
  return cs.pending_count() > popped;
}

bool CheckpointRestorer::warp_failed() const {
  return server_ != nullptr && server_->poisoned();
}

std::vector<core::Event> CheckpointRestorer::warp_take_trace_batch(
    ProcId proc) {
  return server_->take_trace_batch(proc);
}

// ------------------------------------------------------------------ config

sim::SimulationConfig config_from(const CheckpointFile& f,
                                  int workers_override) {
  sim::SimulationConfig cfg = trace::decode_config(f.config);
  if (workers_override >= 0) cfg.core.backend_workers = workers_override;
  return cfg;
}

}  // namespace compass::ckpt
