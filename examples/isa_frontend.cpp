// The instrumentation pipeline end to end: assemble a program in the
// synthetic PowerPC-like ISA, run it through the instrumentation pass, and
// execute it as a simulated frontend process — the paper's "compile to
// assembly, instrument each basic block and memory reference" path, with
// two instances sharing data through a shared segment.
//
//   ./examples/isa_frontend [--cpus=2] [--iters=2000]
#include <cstdio>

#include "isa/assembler.h"
#include "isa/interpreter.h"
#include "sim/simulation.h"
#include "util/flags.h"

using namespace compass;

namespace {

// Each instance atomically increments a shared counter `iters` times and
// sums a shared array. r1 = array base, r2 = counter address, r3 = iters.
constexpr std::string_view kProgram = R"(
      li   r4, 0        ; running sum
      li   r5, 0        ; index
      li   r6, 1
      li   r7, 512      ; array elements
  loop:
      ldx  r8, r1, r9   ; load array[index * 8]
      add  r4, r4, r8
      sync r10, r2, r6  ; fetch&add(counter, 1)
      addi r5, r5, 1
      addi r9, r9, 8
      sub  r3, r3, r6
      bne  r3, r0, wrap
      b    done
  wrap:
      blt  r5, r7, loop
      li   r5, 0
      li   r9, 0
      b    loop
  done:
      st   r4, r2, 8    ; publish the sum next to the counter
      halt
)";

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {{"cpus", "2"}, {"iters", "2000"}}, {});
  if (flags.help_requested()) {
    std::fputs(flags.usage("isa_frontend").c_str(), stdout);
    return 0;
  }
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
  const auto iters = flags.get_int("iters");

  const isa::Program program = isa::assemble(kProgram);
  std::printf("program: %zu basic blocks, %zu instructions\n%s\n",
              program.num_blocks(), program.total_insns(),
              program.to_string().c_str());

  sim::Simulation sim(cfg);
  std::uint64_t executed[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    sim.spawn("isa" + std::to_string(i), [&, i, iters](sim::Proc& p) {
      // Shared segment: counter at +0, published sums at +8/+16, array
      // at +64.
      const auto segid = p.shmget(0x15A, 64 + 512 * 8);
      const auto base = static_cast<Addr>(p.shmat(segid));
      if (i == 0)
        for (int e = 0; e < 512; ++e)
          p.write<std::int64_t>(base + 64 + static_cast<Addr>(e) * 8, e);
      isa::Interpreter interp(program, p.ctx(), p.mem());
      interp.set_reg(1, static_cast<std::int64_t>(base + 64));
      interp.set_reg(2, static_cast<std::int64_t>(base) + i * 8);
      interp.set_reg(3, iters);
      const isa::RunResult r = interp.run();
      executed[i] = r.insns;
      std::printf("instance %d: %llu insns, %llu blocks, %llu refs, sum=%lld\n",
                  i, static_cast<unsigned long long>(r.insns),
                  static_cast<unsigned long long>(r.blocks),
                  static_cast<unsigned long long>(r.mem_refs),
                  static_cast<long long>(interp.reg(4)));
    });
  }
  sim.run();

  const auto s = sim.breakdown().shares();
  std::printf("\nsimulated cycles: %llu  (user %.1f%%, OS %.1f%%)\n",
              static_cast<unsigned long long>(sim.now()), s.user, s.os_total);
  std::printf("memory refs simulated: %llu\n",
              static_cast<unsigned long long>(
                  sim.stats().counter_value("backend.mem_refs")));
  return executed[0] > 0 && executed[1] > 0 ? 0 : 1;
}
