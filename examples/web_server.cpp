// Web-serving scenario: SPECWeb96-like trace replayed against prefork HTTP
// server processes — the paper's "SPECWeb/Apache" study setup, including
// the request-trace-file methodology of §4.2 (the trace is generated,
// serialized to the trace-file format, parsed back, and fed by the player).
//
//   ./examples/web_server [--cpus=4] [--servers=2] [--requests=30]
//                         [--concurrency=4] [--print-trace]
#include <cstdio>

#include "util/flags.h"
#include "workloads/runner.h"
#include "workloads/web/server.h"

using namespace compass;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {{"cpus", "4"},
                     {"servers", "2"},
                     {"requests", "30"},
                     {"concurrency", "4"},
                     {"print-trace", "false"}},
                    {{"servers", "prefork httpd processes"},
                     {"requests", "trace length"},
                     {"print-trace", "dump the generated trace file"}});
  if (flags.help_requested()) {
    std::fputs(flags.usage("web_server").c_str(), stdout);
    return 0;
  }

  sim::SimulationConfig cfg;
  cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));

  workloads::WebScenario sc;
  sc.servers = static_cast<int>(flags.get_int("servers"));
  sc.requests = static_cast<std::uint64_t>(flags.get_int("requests"));
  sc.concurrency = static_cast<int>(flags.get_int("concurrency"));

  if (flags.get_bool("print-trace")) {
    workloads::web::Fileset fileset(sc.fileset);
    const workloads::web::Trace trace =
        workloads::web::Trace::generate(fileset, sc.requests, sc.mean_gap, sc.seed);
    std::fputs(trace.serialize().c_str(), stdout);
    return 0;
  }

  std::printf("SPECWeb-like: %llu requests, %d servers, concurrency %d on %d CPUs\n",
              static_cast<unsigned long long>(sc.requests), sc.servers,
              sc.concurrency, cfg.core.num_cpus);

  const auto stats = workloads::run_web(cfg, sc);

  std::printf("\nserved %llu requests in %llu cycles (%.3f simulated s)\n",
              static_cast<unsigned long long>(stats.work_units),
              static_cast<unsigned long long>(stats.cycles),
              stats.simulated_seconds);
  std::printf("time breakdown: user %.1f%%  OS %.1f%% (interrupt %.1f%%, kernel %.1f%%)\n",
              stats.shares.user, stats.shares.os_total, stats.shares.interrupt,
              stats.shares.kernel);
  std::printf("request latency (cycles): mean %.0f  p50 %llu  p95 %llu  max %llu\n",
              stats.latency.mean(),
              static_cast<unsigned long long>(stats.latency.quantile(0.5)),
              static_cast<unsigned long long>(stats.latency.quantile(0.95)),
              static_cast<unsigned long long>(stats.latency.max()));
  std::printf("frames in/out: %llu/%llu  syscalls %llu  interrupts %llu\n",
              static_cast<unsigned long long>(stats.net_frames_in),
              static_cast<unsigned long long>(stats.net_frames_out),
              static_cast<unsigned long long>(stats.syscalls),
              static_cast<unsigned long long>(stats.interrupts));
  std::printf("host wall time: %.2f s\n", stats.host_seconds);
  return 0;
}
