// Scientific (SPLASH-like) kernel: the OS-light contrast from the paper's
// introduction. Runs a blocked parallel matrix multiply and prints the
// user/OS breakdown — expect user time to dominate, unlike the commercial
// workloads.
//
//   ./examples/sci_kernel [--cpus=4] [--procs=4] [--n=48]
#include <cstdio>

#include "util/flags.h"
#include "workloads/runner.h"

using namespace compass;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {{"cpus", "4"}, {"procs", "4"}, {"n", "48"}}, {});
  if (flags.help_requested()) {
    std::fputs(flags.usage("sci_kernel").c_str(), stdout);
    return 0;
  }
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));

  workloads::SciScenario sc;
  sc.matmul.nprocs = static_cast<int>(flags.get_int("procs"));
  sc.matmul.n = static_cast<int>(flags.get_int("n"));

  const auto stats = workloads::run_sci(cfg, sc);
  std::printf("matmul %dx%d with %d procs: %llu cycles\n", sc.matmul.n,
              sc.matmul.n, sc.matmul.nprocs,
              static_cast<unsigned long long>(stats.cycles));
  std::printf("time breakdown: user %.1f%%  OS %.1f%% (interrupt %.1f%%, kernel %.1f%%)\n",
              stats.shares.user, stats.shares.os_total, stats.shares.interrupt,
              stats.shares.kernel);
  std::printf("mem refs: %llu\n",
              static_cast<unsigned long long>(stats.mem_refs));
  return 0;
}
