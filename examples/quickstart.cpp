// Quickstart: the smallest complete COMPASS simulation.
//
// Two simulated application processes run on a 2-CPU target with the
// "simple backend" (one-level caches + MESI bus). One writes a file through
// the simulated OS; the other reads it back; both do a burst of user-mode
// computation over their private heaps. The run prints what the backend
// observed: simulated time, the user/kernel/interrupt breakdown (paper
// Table 1 format), and key model counters.
//
//   ./examples/quickstart [--cpus=2] [--model=simple|numa|flat]
#include <cstdio>
#include <string>

#include "sim/simulation.h"
#include "util/flags.h"

using namespace compass;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {{"cpus", "2"}, {"model", "simple"}},
                    {{"cpus", "simulated processors"},
                     {"model", "backend architecture model"}});
  if (flags.help_requested()) {
    std::fputs(flags.usage("quickstart").c_str(), stdout);
    return 0;
  }

  sim::SimulationConfig cfg;
  cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
  const std::string model = flags.get("model");
  cfg.model = model == "numa"   ? sim::BackendModel::kNuma
              : model == "flat" ? sim::BackendModel::kFlat
                                : sim::BackendModel::kSimple;
  if (cfg.model == sim::BackendModel::kNuma) {
    cfg.core.num_nodes = cfg.core.num_cpus >= 2 ? 2 : 1;
    while (cfg.core.num_cpus % cfg.core.num_nodes != 0) --cfg.core.num_nodes;
  }

  sim::Simulation sim(cfg);

  // Process 1: create a file and write a megabyte through the OS.
  sim.spawn("writer", [](sim::Proc& p) {
    const auto fd = p.creat("/tmp/hello.dat");
    const Addr buf = p.alloc(64 * 1024);
    for (int i = 0; i < 16; ++i) {
      std::vector<std::uint8_t> chunk(64 * 1024,
                                      static_cast<std::uint8_t>(i));
      p.put_bytes(buf, chunk);
      p.write_fd(fd, buf, chunk.size());
    }
    p.fsync(fd);
    p.close(fd);
    // Signal the reader.
    p.sem_init(1, 0);
    p.sem_v(1);
  });

  // Process 2: wait, then read the file back and crunch numbers.
  sim.spawn("reader", [](sim::Proc& p) {
    p.sem_init(1, 0);
    p.sem_p(1);
    const auto fd = p.open("/tmp/hello.dat");
    const Addr buf = p.alloc(64 * 1024);
    std::int64_t total = 0;
    for (;;) {
      const auto n = p.read_fd(fd, buf, 64 * 1024);
      if (n <= 0) break;
      // User-mode pass over the data.
      for (std::int64_t off = 0; off < n; off += 4096) {
        total += p.read<std::uint8_t>(buf + static_cast<Addr>(off));
        p.ctx().compute(20);
      }
    }
    p.close(fd);
    std::printf("reader checksum: %lld\n", static_cast<long long>(total));
  });

  sim.run();

  const auto& tb = sim.breakdown();
  const auto s = tb.shares();
  std::printf("\nsimulated cycles: %llu (%.3f s at %.0f MHz)\n",
              static_cast<unsigned long long>(sim.now()),
              cfg.core.cycles_to_seconds(sim.now()), cfg.core.cpu_mhz);
  std::printf("time breakdown:  user %.1f%%  OS %.1f%% (interrupt %.1f%%, kernel %.1f%%)\n",
              s.user, s.os_total, s.interrupt, s.kernel);
  std::printf("memory refs: %llu   syscalls: %llu   disk reads: %llu  writes: %llu\n",
              static_cast<unsigned long long>(sim.stats().counter_value("backend.mem_refs")),
              static_cast<unsigned long long>(sim.stats().counter_value("os.syscalls")),
              static_cast<unsigned long long>(sim.stats().counter_value("disk0.reads")),
              static_cast<unsigned long long>(sim.stats().counter_value("disk0.writes")));
  return 0;
}
