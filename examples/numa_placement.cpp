// CC-NUMA page-placement study: a TPC-D-like parallel scan on the complex
// backend under the three placement policies of paper §3.3.1 (round-robin,
// block, first-touch), reporting local/remote access ratios and runtime.
//
//   ./examples/numa_placement [--cpus=4] [--nodes=2] [--workers=4]
//                             [--lineitems=2000]
#include <cstdio>

#include "stats/report.h"
#include "util/flags.h"
#include "workloads/runner.h"

using namespace compass;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {{"cpus", "4"},
                     {"nodes", "2"},
                     {"workers", "4"},
                     {"lineitems", "2000"}},
                    {});
  if (flags.help_requested()) {
    std::fputs(flags.usage("numa_placement").c_str(), stdout);
    return 0;
  }

  stats::Table table({"placement", "cycles", "local", "remote", "remote %"});
  for (const auto placement :
       {mem::PlacementPolicy::kRoundRobin, mem::PlacementPolicy::kBlock,
        mem::PlacementPolicy::kFirstTouch}) {
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
    cfg.core.num_nodes = static_cast<int>(flags.get_int("nodes"));
    cfg.model = sim::BackendModel::kNuma;
    cfg.placement = placement;

    workloads::TpcdScenario sc;
    sc.workers = static_cast<int>(flags.get_int("workers"));
    sc.tpcd.lineitems = static_cast<std::uint64_t>(flags.get_int("lineitems"));

    const auto stats = workloads::run_tpcd(cfg, sc);
    const double remote_pct =
        stats.numa_local + stats.numa_remote == 0
            ? 0.0
            : 100.0 * static_cast<double>(stats.numa_remote) /
                  static_cast<double>(stats.numa_local + stats.numa_remote);
    table.add_row({std::string(mem::to_string(placement)),
                   stats::with_commas(stats.cycles),
                   stats::with_commas(stats.numa_local),
                   stats::with_commas(stats.numa_remote),
                   stats::fmt(remote_pct, 1)});
  }
  std::fputs(
      table.to_string("TPCD-like parallel scan on CC-NUMA by page placement")
          .c_str(),
      stdout);
  return 0;
}
