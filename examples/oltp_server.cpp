// OLTP scenario: a TPC-C-like transaction mix on the mini database engine,
// run by several server processes sharing a buffer pool — the paper's
// "TPCC/DB2" study setup.
//
//   ./examples/oltp_server [--cpus=4] [--workers=4] [--txns=40]
//                          [--warehouses=2] [--model=simple|numa]
//                          [--sched=fcfs|affinity] [--preemptive]
#include <cstdio>

#include "util/flags.h"
#include "workloads/runner.h"

using namespace compass;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv,
                    {{"cpus", "4"},
                     {"workers", "4"},
                     {"txns", "40"},
                     {"warehouses", "2"},
                     {"model", "simple"},
                     {"sched", "fcfs"},
                     {"preemptive", "false"}},
                    {{"workers", "database server processes"},
                     {"txns", "transactions per worker"},
                     {"sched", "process scheduler policy"}});
  if (flags.help_requested()) {
    std::fputs(flags.usage("oltp_server").c_str(), stdout);
    return 0;
  }

  sim::SimulationConfig cfg;
  cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
  cfg.model = flags.get("model") == "numa" ? sim::BackendModel::kNuma
                                           : sim::BackendModel::kSimple;
  if (cfg.model == sim::BackendModel::kNuma) {
    cfg.core.num_nodes = cfg.core.num_cpus >= 2 ? 2 : 1;
    while (cfg.core.num_cpus % cfg.core.num_nodes != 0) --cfg.core.num_nodes;
  }
  cfg.core.sched_policy = flags.get("sched") == "affinity"
                              ? core::SchedPolicy::kAffinity
                              : core::SchedPolicy::kFcfs;
  cfg.core.preemptive = flags.get_bool("preemptive");

  workloads::TpccScenario sc;
  sc.workers = static_cast<int>(flags.get_int("workers"));
  sc.tpcc.warehouses = static_cast<int>(flags.get_int("warehouses"));
  sc.tpcc.txns_per_worker = static_cast<int>(flags.get_int("txns"));

  std::printf("TPCC-like OLTP: %d workers x %d txns on %d CPUs (%s backend, %s sched%s)\n",
              sc.workers, sc.tpcc.txns_per_worker, cfg.core.num_cpus,
              flags.get("model").c_str(), flags.get("sched").c_str(),
              cfg.core.preemptive ? ", preemptive" : "");

  const auto stats = workloads::run_tpcc(cfg, sc);

  std::printf("\ncompleted %llu transactions in %llu simulated cycles (%.3f s)\n",
              static_cast<unsigned long long>(stats.work_units),
              static_cast<unsigned long long>(stats.cycles),
              stats.simulated_seconds);
  std::printf("throughput: %.0f txn/simulated-second\n",
              static_cast<double>(stats.work_units) /
                  std::max(1e-9, stats.simulated_seconds));
  std::printf("time breakdown: user %.1f%%  OS %.1f%% (interrupt %.1f%%, kernel %.1f%%)\n",
              stats.shares.user, stats.shares.os_total, stats.shares.interrupt,
              stats.shares.kernel);
  std::printf("mem refs %llu  syscalls %llu  disk R/W %llu/%llu  ctx switches %llu  preemptions %llu\n",
              static_cast<unsigned long long>(stats.mem_refs),
              static_cast<unsigned long long>(stats.syscalls),
              static_cast<unsigned long long>(stats.disk_reads),
              static_cast<unsigned long long>(stats.disk_writes),
              static_cast<unsigned long long>(stats.context_switches),
              static_cast<unsigned long long>(stats.preemptions));
  if (stats.l1_hits + stats.l1_misses > 0)
    std::printf("L1 hit rate: %.2f%%\n",
                100.0 * static_cast<double>(stats.l1_hits) /
                    static_cast<double>(stats.l1_hits + stats.l1_misses));
  std::printf("host wall time: %.2f s\n", stats.host_seconds);
  return 0;
}
