// Fault-plane overhead (google-benchmark): the injector is compiled into
// every dispatch path, so the disabled plan must cost nothing measurable.
//
//   BM_SciFaultDisabled     — all-zero plan: no injector is constructed, no
//                             hooks are wired; must match the PR 3 baseline
//                             (the same workload before the fault plane).
//   BM_SciFaultEnabledInert — injector constructed and hooks wired, but
//                             with vanishingly small rates, isolating the
//                             per-dispatch cost of the enabled plane.
//   BM_WebFaultDisabled / BM_WebFaultEnabledInert — same pair on the
//                             OS-heavy path (sockets, fs, oscall gate).
#include <benchmark/benchmark.h>

#include "workloads/runner.h"

using namespace compass;

namespace {

sim::SimulationConfig sci_config() {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  cfg.model = sim::BackendModel::kSimple;
  return cfg;
}

workloads::SciScenario sci_scenario() {
  workloads::SciScenario sc;
  sc.matmul.n = 24;
  sc.matmul.block = 8;
  sc.matmul.nprocs = 2;
  return sc;
}

workloads::WebScenario web_scenario() {
  workloads::WebScenario sc;
  sc.requests = 12;
  return sc;
}

/// Tiny-but-nonzero rates: enabled() is true, every draw site consults the
/// injector, yet faults essentially never fire — a pure dispatch-cost probe.
fault::FaultPlan inert_enabled_plan() {
  fault::FaultPlan p;
  p.seed = 1;
  p.disk_error_prob = 1e-9;
  p.net_drop_prob = 1e-9;
  p.net_dup_prob = 1e-9;
  p.oscall_eintr_prob = 1e-9;
  p.sched_jitter_prob = 1e-9;
  p.sched_jitter_cycles = 1;
  return p;
}

void BM_SciFaultDisabled(benchmark::State& state) {
  for (auto _ : state) {
    const workloads::ScenarioStats st =
        workloads::run_sci(sci_config(), sci_scenario());
    benchmark::DoNotOptimize(st.cycles);
  }
}
BENCHMARK(BM_SciFaultDisabled)->Unit(benchmark::kMillisecond);

void BM_SciFaultEnabledInert(benchmark::State& state) {
  sim::SimulationConfig cfg = sci_config();
  cfg.fault = inert_enabled_plan();
  for (auto _ : state) {
    const workloads::ScenarioStats st =
        workloads::run_sci(cfg, sci_scenario());
    benchmark::DoNotOptimize(st.cycles);
  }
}
BENCHMARK(BM_SciFaultEnabledInert)->Unit(benchmark::kMillisecond);

void BM_WebFaultDisabled(benchmark::State& state) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  for (auto _ : state) {
    const workloads::ScenarioStats st =
        workloads::run_web(cfg, web_scenario());
    benchmark::DoNotOptimize(st.cycles);
  }
}
BENCHMARK(BM_WebFaultDisabled)->Unit(benchmark::kMillisecond);

void BM_WebFaultEnabledInert(benchmark::State& state) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 2;
  cfg.fault = inert_enabled_plan();
  for (auto _ : state) {
    const workloads::ScenarioStats st =
        workloads::run_web(cfg, web_scenario());
    benchmark::DoNotOptimize(st.cycles);
  }
}
BENCHMARK(BM_WebFaultEnabledInert)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
