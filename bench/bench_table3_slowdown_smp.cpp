// Table 3 reproduction: simulation slowdown on an SMP host.
//
// Paper: on a 4-way SMP "COMPASS runs more than twice as fast ... as on the
// uniprocessor for the complex backend (after properly scaling the
// execution times to the respective processor frequencies)" — the frontend
// and backend processes overlap on different host processors.
//
// We run the same experiment with the host throttle at 1 permit
// (uniprocessor) and unlimited (SMP) and report the speedup.
#include "slowdown_common.h"

using namespace compass;

int main() {
  std::printf("running uniprocessor-host configuration...\n");
  const bench::SlowdownResult uni = bench::run_slowdown(/*host_cpus=*/1, 3);
  std::printf("running SMP-host configuration...\n\n");
  const bench::SlowdownResult smp = bench::run_slowdown(/*host_cpus=*/0, 3);

  bench::print_slowdown_table("Uniprocessor host", uni);
  std::printf("\n");
  bench::print_slowdown_table("SMP host (all host CPUs)", smp);

  const double simple_speedup = uni.simple_seconds / smp.simple_seconds;
  const double complex_speedup = uni.complex_seconds / smp.complex_seconds;
  std::printf(
      "\nTable 3: SMP-host speedup over uniprocessor host: simple %.2fx, "
      "complex %.2fx (paper: >2x for the complex backend)\n",
      simple_speedup, complex_speedup);

  int failures = 0;
  if (!(complex_speedup > 1.2)) {
    std::printf("SHAPE MISMATCH: the SMP host should run the complex backend "
                "substantially faster (got %.2fx)\n",
                complex_speedup);
    ++failures;
  }
  if (failures == 0) std::printf("\nall Table 3 shape checks passed\n");
  return failures == 0 ? 0 : 1;
}
