// Frontend L1 reference-filter throughput (google-benchmark): one full sci
// matmul run per iteration with the filter off vs on, at 8/16/32 simulated
// CPUs over the simple MESI-bus model. items_per_second is simulated memory
// references per second — the filter's whole point is to raise it by
// absorbing proven L1 hits in the frontend instead of crossing the event
// port for them. Counters:
//
//   absorbed_ratio  — fraction of references the frontends absorbed locally
//                     (0 with the filter off);
//   crossings_per_s — dispatched batches per second, the synchronous
//                     port-crossing rate the filter exists to shrink.
//
// The absorbed references still ride in the next crossing's batch and replay
// through the literal model, so both rows of each filter-off/on pair simulate
// the identical run — same cycles, same counters — making the real_time
// delta a pure measure of the crossing savings. The CI bench gate consumes
// the same JSON schema as the other microbenches and additionally checks the
// filter-on row beats filter-off by >= 1.5x at 32 CPUs.
#include <benchmark/benchmark.h>

#include "workloads/runner.h"

using namespace compass;

namespace {

void BM_L1FilterSci(benchmark::State& state) {
  const bool filter = state.range(0) != 0;
  const int cpus = static_cast<int>(state.range(1));
  std::uint64_t refs = 0;
  std::uint64_t absorbed = 0;
  std::uint64_t batches = 0;
  for (auto _ : state) {
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = cpus;
    cfg.core.l1_filter = filter;
    cfg.model = sim::BackendModel::kSimple;
    workloads::SciScenario sc;
    // n = 64 keeps every worker busy at 32 procs (two rows each) while the
    // whole run stays in microbench territory.
    sc.matmul.n = 64;
    sc.matmul.block = 8;
    sc.matmul.nprocs = cpus;
    const workloads::ScenarioStats st = workloads::run_sci(cfg, sc);
    benchmark::DoNotOptimize(st.cycles);
    refs += st.mem_refs;
    const auto& ctr = st.snapshot.counters;
    const auto abs_it = ctr.find("frontend.absorbed");
    if (abs_it != ctr.end()) absorbed += abs_it->second;
    const auto bat_it = ctr.find("backend.batches");
    if (bat_it != ctr.end()) batches += bat_it->second;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(refs));
  state.counters["absorbed_ratio"] =
      refs == 0 ? 0.0
                : static_cast<double>(absorbed) / static_cast<double>(refs);
  state.counters["crossings_per_s"] = benchmark::Counter(
      static_cast<double>(batches), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_L1FilterSci)
    ->ArgNames({"filter", "cpus"})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 32})
    ->Args({1, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
