// Microbenchmarks of the backend architecture models (google-benchmark):
// per-reference cost of the flat, simple (MESI bus) and complex (directory
// CC-NUMA) machines, cache array operations, VM translation, and the
// global event scheduler. These are the host-side costs behind the
// simple-vs-complex slowdown gap of Table 2.
//
// Machine benchmarks report items_per_second (= simulated references per
// host second) in the JSON output, the same shape bench_event_port uses, so
// CI bench-smoke artifacts can be diffed across the two suites.
#include <benchmark/benchmark.h>

#include "core/scheduler.h"
#include "mem/arena.h"
#include "mem/machine.h"
#include "util/rng.h"

using namespace compass;

namespace {

core::Event ref_at(Addr a, Cycles t, bool write) {
  return core::Event::mem_ref(ExecMode::kUser,
                              write ? RefType::kStore : RefType::kLoad, a, 8, t);
}

void BM_FlatMemoryAccess(benchmark::State& state) {
  mem::Vm vm({.num_nodes = 1});
  mem::FlatMemory flat(10, &vm);
  util::Rng rng(1);
  Cycles t = 0;
  for (auto _ : state) {
    const Addr a = rng.next_below(1 << 22);
    benchmark::DoNotOptimize(flat.access(0, 0, ref_at(a, t, false)));
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMemoryAccess);

void BM_SimpleMachineAccess(benchmark::State& state) {
  const int cpus = static_cast<int>(state.range(0));
  mem::Vm vm({.num_nodes = 1});
  mem::SimpleMachine machine({}, cpus, vm);
  util::Rng rng(2);
  Cycles t = 0;
  CpuId cpu = 0;
  for (auto _ : state) {
    const Addr a = mem::kKernelBase + rng.next_below(1 << 20);
    benchmark::DoNotOptimize(
        machine.access(cpu, cpu, ref_at(a, t, rng.next_bool(0.3))));
    cpu = (cpu + 1) % cpus;
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimpleMachineAccess)->Arg(1)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_NumaMachineAccess(benchmark::State& state) {
  const int cpus = static_cast<int>(state.range(0));
  mem::Vm vm({.num_nodes = 2, .placement = mem::PlacementPolicy::kFirstTouch});
  mem::NumaMachine machine({}, cpus, 2, vm);
  util::Rng rng(3);
  Cycles t = 0;
  CpuId cpu = 0;
  for (auto _ : state) {
    const Addr a = mem::kKernelBase + rng.next_below(1 << 20);
    benchmark::DoNotOptimize(
        machine.access(cpu, cpu, ref_at(a, t, rng.next_bool(0.3))));
    cpu = (cpu + 1) % cpus;
    t += 10;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NumaMachineAccess)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_CacheLookupHit(benchmark::State& state) {
  mem::Cache cache("t", mem::CacheConfig{32 * 1024, 4, 64});
  for (Addr a = 0; a < 16 * 1024; a += 64) cache.insert(a, mem::Mesi::kShared);
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(rng.next_below(16 * 1024)));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_VmTranslateWarm(benchmark::State& state) {
  mem::Vm vm({.num_nodes = 4, .placement = mem::PlacementPolicy::kRoundRobin});
  for (Addr a = 0; a < (1 << 24); a += mem::kPageSize) vm.translate(0, a, 0);
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm.translate(0, rng.next_below(1 << 24), 0));
  }
}
BENCHMARK(BM_VmTranslateWarm);

void BM_GlobalSchedulerChurn(benchmark::State& state) {
  core::GlobalScheduler sched;
  Cycles t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sched.schedule_at(t + 100, [&sink] { ++sink; });
    sched.schedule_at(t + 50, [&sink] { ++sink; });
    sched.pop_next().second();
    sched.pop_next().second();
    t += 10;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_GlobalSchedulerChurn);

void BM_ArenaAllocFree(benchmark::State& state) {
  mem::Arena arena("b", 0x1000, 1 << 20);
  for (auto _ : state) {
    const Addr a = arena.alloc(64, 8);
    const Addr b = arena.alloc(128, 16);
    arena.free(a, 64);
    arena.free(b, 128);
  }
}
BENCHMARK(BM_ArenaAllocFree);

}  // namespace

BENCHMARK_MAIN();
