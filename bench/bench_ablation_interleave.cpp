// Interleaving-granularity ablation (paper §2).
//
// COMPASS synchronizes frontends at basic-block / memory-reference
// granularity: "it is possible to simulate this kind of fine-grained
// interleaving by forcing a context switch after each frontend instruction,
// [but] doing so will result in an intolerable slowdown". The event-port
// batch size is our granularity knob: batch 1 = the paper's
// reference-granularity design point; larger batches coarsen interleaving
// for speed.
//
// The bench sweeps the batch size on a fixed OLTP run and reports host
// time, event-port posts, and the drift of simulated time and L1 misses
// from the batch=1 baseline (the accuracy cost of coarsening).
#include <cmath>
#include <cstdio>

#include "stats/report.h"
#include "workloads/runner.h"

using namespace compass;

int main() {
  workloads::TpccScenario sc;
  sc.tpcc.warehouses = 2;
  sc.tpcc.items = 200;
  sc.tpcc.txns_per_worker = 20;
  sc.workers = 3;

  struct Point {
    int batch;
    workloads::ScenarioStats stats;
    std::uint64_t batches;
  };
  std::vector<Point> points;
  for (const int batch : {1, 4, 16, 64}) {
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = 2;
    cfg.core.batch_size = batch;
    cfg.os_server.ctx_opts.batch_size = batch;
    sim::SimulationConfig run_cfg = cfg;
    // Capture the batch count: rerun stats come from the scenario runner.
    const auto stats = workloads::run_tpcc(run_cfg, sc);
    points.push_back({batch, stats, 0});
  }

  const auto& base = points.front().stats;
  stats::Table table({"batch size", "host s", "sim cycles", "cycle drift",
                      "L1 miss drift", "refs"});
  for (const auto& p : points) {
    const double cyc_drift =
        100.0 * (static_cast<double>(p.stats.cycles) -
                 static_cast<double>(base.cycles)) /
        static_cast<double>(base.cycles);
    const double base_miss = static_cast<double>(base.l1_misses);
    const double miss_drift =
        base_miss == 0 ? 0
                       : 100.0 * (static_cast<double>(p.stats.l1_misses) -
                                  base_miss) /
                             base_miss;
    table.add_row({std::to_string(p.batch), stats::fmt(p.stats.host_seconds, 2),
                   stats::with_commas(p.stats.cycles),
                   stats::fmt(cyc_drift, 2) + "%",
                   stats::fmt(miss_drift, 2) + "%",
                   stats::with_commas(p.stats.mem_refs)});
  }
  std::fputs(table
                 .to_string("Interleaving-granularity ablation (OLTP, 2 CPUs; "
                            "batch 1 = paper design point)")
                 .c_str(),
             stdout);

  // Shape: coarser batching may nudge timing-dependent synchronization
  // (latch retries), but the workload itself must be essentially unchanged
  // (< 0.5% reference drift) and the timing drift small.
  int failures = 0;
  for (const auto& p : points) {
    const double ref_drift =
        std::abs(static_cast<double>(p.stats.mem_refs) -
                 static_cast<double>(base.mem_refs)) /
        static_cast<double>(base.mem_refs);
    if (ref_drift > 0.005) {
      std::printf("SHAPE MISMATCH: batch %d changed the reference stream by "
                  "%.2f%% (%llu vs %llu)\n",
                  p.batch, 100.0 * ref_drift,
                  static_cast<unsigned long long>(p.stats.mem_refs),
                  static_cast<unsigned long long>(base.mem_refs));
      ++failures;
    }
  }
  if (failures == 0)
    std::printf("\nreference stream stable across granularities; timing "
                "drift shown above\n");
  return failures == 0 ? 0 : 1;
}
