// Sharded-backend throughput microbenchmark (google-benchmark): one full
// Backend::run() per iteration at W dispatch lanes and P simulated CPUs,
// with one pure compute+load frontend per CPU over the vm-less flat model —
// the concurrent-access-safe configuration, so multi-item windows execute
// fully in parallel (lane A). items_per_second is simulated events per
// second; the dispatch counter reports dispatched batches per second
// (invert for ns/dispatch). The CI bench gate consumes the same JSON
// schema as the other microbenches.
//
// The Cache/Numa families run the same shape over the stateful models
// (lane B): each frontend laps a private working set that fits in its L1,
// so after the first cold lap the classify pass proves every batch clean
// and disjoint and the window fans out across the shard pool. The
// laneb_windows / laneb_par_items counters report how often that plan
// succeeded (per iteration).
//
// Workers > 1 only outperforms serial on a multi-core host; on a single
// core the window protocol's bookkeeping is pure overhead, which is
// exactly what the W=1-vs-W>1 comparison is there to quantify.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/frontend.h"
#include "mem/machine.h"
#include "mem/vm.h"

using namespace compass;

namespace {

constexpr int kRefsPerProc = 1500;
constexpr int kBatchSize = 8;

void BM_ParallelBackend(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int cpus = static_cast<int>(state.range(1));
  std::uint64_t windows = 0;
  for (auto _ : state) {
    core::SimConfig cfg;
    cfg.num_cpus = cpus;
    cfg.backend_workers = workers;
    core::Communicator comm(cfg.num_cpus);
    mem::FlatMemory memsys(10);
    core::Backend::Hooks hooks;
    hooks.memsys = &memsys;
    core::Backend backend(cfg, comm, hooks);

    std::vector<std::unique_ptr<core::Frontend>> procs;
    core::SimContext::Options opts;
    opts.batch_size = kBatchSize;
    for (int p = 0; p < cpus; ++p)
      procs.push_back(std::make_unique<core::Frontend>(
          backend, "p" + std::to_string(p), opts));
    for (int p = 0; p < cpus; ++p) {
      const Addr base = 0x1000 + static_cast<Addr>(p) * 0x100000;
      procs[static_cast<std::size_t>(p)]->start([base, p](core::SimContext& ctx) {
        for (int i = 0; i < kRefsPerProc; ++i) {
          ctx.compute(static_cast<Cycles>(11 + (p % 5) * 3));
          ctx.load(base + static_cast<Addr>(i) * 64, 8);
        }
      });
    }
    backend.run();
    for (auto& f : procs) f->join();
    windows += backend.windows_executed();
  }
  const auto events =
      static_cast<std::int64_t>(state.iterations()) * cpus * kRefsPerProc;
  const auto batches = events / kBatchSize;
  state.SetItemsProcessed(events);
  state.counters["dispatches_per_s"] = benchmark::Counter(
      static_cast<double>(batches), benchmark::Counter::kIsRate);
  state.counters["windows"] =
      static_cast<double>(windows) / static_cast<double>(state.iterations());
}

// Lane-B benchmark body shared by the cache and NUMA families: `make`
// builds the machine for one iteration (the Vm it captures outlives the
// Backend). Hit-heavy private laps: 64 lines x 2 refs x kLaps per proc.
constexpr int kLaps = 12;
constexpr int kLanebLines = 64;

template <typename MakeMachine>
void run_laneb_backend(benchmark::State& state, MakeMachine make) {
  const int workers = static_cast<int>(state.range(0));
  const int cpus = static_cast<int>(state.range(1));
  std::uint64_t laneb_windows = 0;
  std::uint64_t laneb_items = 0;
  for (auto _ : state) {
    core::SimConfig cfg;
    cfg.num_cpus = cpus;
    cfg.backend_workers = workers;
    core::Communicator comm(cfg.num_cpus);
    mem::Vm vm({.num_nodes = 2});
    auto memsys = make(vm, cpus);
    core::Backend::Hooks hooks;
    hooks.memsys = memsys.get();
    core::Backend backend(cfg, comm, hooks);

    std::vector<std::unique_ptr<core::Frontend>> procs;
    core::SimContext::Options opts;
    opts.batch_size = kBatchSize;
    for (int p = 0; p < cpus; ++p)
      procs.push_back(std::make_unique<core::Frontend>(
          backend, "p" + std::to_string(p), opts));
    for (int p = 0; p < cpus; ++p) {
      const Addr base = 0x1000 + static_cast<Addr>(p) * 0x100000;
      procs[static_cast<std::size_t>(p)]->start([base, p](core::SimContext& ctx) {
        for (int lap = 0; lap < kLaps; ++lap) {
          for (int i = 0; i < kLanebLines; ++i) {
            const Addr a = base + static_cast<Addr>(i) * 64;
            ctx.compute(static_cast<Cycles>(9 + (p % 5) * 3));
            ctx.load(a, 8);
            ctx.store(a, 8);
          }
        }
      });
    }
    backend.run();
    for (auto& f : procs) f->join();
    laneb_windows += backend.laneb_windows();
    laneb_items += backend.laneb_parallel_items();
  }
  const auto events = static_cast<std::int64_t>(state.iterations()) * cpus *
                      kLaps * kLanebLines * 2;
  state.SetItemsProcessed(events);
  state.counters["laneb_windows"] = static_cast<double>(laneb_windows) /
                                    static_cast<double>(state.iterations());
  state.counters["laneb_par_items"] = static_cast<double>(laneb_items) /
                                      static_cast<double>(state.iterations());
}

void BM_ParallelBackendCache(benchmark::State& state) {
  run_laneb_backend(state, [](mem::Vm& vm, int cpus) {
    return std::make_unique<mem::SimpleMachine>(mem::SimpleMachineConfig{},
                                                cpus, vm);
  });
}

void BM_ParallelBackendNuma(benchmark::State& state) {
  run_laneb_backend(state, [](mem::Vm& vm, int cpus) {
    return std::make_unique<mem::NumaMachine>(mem::NumaMachineConfig{}, cpus,
                                              2, vm);
  });
}

}  // namespace

BENCHMARK(BM_ParallelBackend)
    ->ArgNames({"workers", "cpus"})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({4, 16})
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({4, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ParallelBackendCache)
    ->ArgNames({"workers", "cpus"})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({4, 16})
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({4, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ParallelBackendNuma)
    ->ArgNames({"workers", "cpus"})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({4, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
