// Sharded-backend throughput microbenchmark (google-benchmark): one full
// Backend::run() per iteration at W dispatch lanes and P simulated CPUs,
// with one pure compute+load frontend per CPU over the vm-less flat model —
// the concurrent-access-safe configuration, so multi-item windows execute
// fully in parallel (lane A). items_per_second is simulated events per
// second; the dispatch counter reports dispatched batches per second
// (invert for ns/dispatch). The CI bench gate consumes the same JSON
// schema as the other microbenches.
//
// Workers > 1 only outperforms serial on a multi-core host; on a single
// core the window protocol's bookkeeping is pure overhead, which is
// exactly what the W=1-vs-W>1 comparison is there to quantify.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/frontend.h"
#include "mem/machine.h"

using namespace compass;

namespace {

constexpr int kRefsPerProc = 1500;
constexpr int kBatchSize = 8;

void BM_ParallelBackend(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const int cpus = static_cast<int>(state.range(1));
  std::uint64_t windows = 0;
  for (auto _ : state) {
    core::SimConfig cfg;
    cfg.num_cpus = cpus;
    cfg.backend_workers = workers;
    core::Communicator comm(cfg.num_cpus);
    mem::FlatMemory memsys(10);
    core::Backend::Hooks hooks;
    hooks.memsys = &memsys;
    core::Backend backend(cfg, comm, hooks);

    std::vector<std::unique_ptr<core::Frontend>> procs;
    core::SimContext::Options opts;
    opts.batch_size = kBatchSize;
    for (int p = 0; p < cpus; ++p)
      procs.push_back(std::make_unique<core::Frontend>(
          backend, "p" + std::to_string(p), opts));
    for (int p = 0; p < cpus; ++p) {
      const Addr base = 0x1000 + static_cast<Addr>(p) * 0x100000;
      procs[static_cast<std::size_t>(p)]->start([base, p](core::SimContext& ctx) {
        for (int i = 0; i < kRefsPerProc; ++i) {
          ctx.compute(static_cast<Cycles>(11 + (p % 5) * 3));
          ctx.load(base + static_cast<Addr>(i) * 64, 8);
        }
      });
    }
    backend.run();
    for (auto& f : procs) f->join();
    windows += backend.windows_executed();
  }
  const auto events =
      static_cast<std::int64_t>(state.iterations()) * cpus * kRefsPerProc;
  const auto batches = events / kBatchSize;
  state.SetItemsProcessed(events);
  state.counters["dispatches_per_s"] = benchmark::Counter(
      static_cast<double>(batches), benchmark::Counter::kIsRate);
  state.counters["windows"] =
      static_cast<double>(windows) / static_cast<double>(state.iterations());
}

}  // namespace

BENCHMARK(BM_ParallelBackend)
    ->ArgNames({"workers", "cpus"})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({4, 16})
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({4, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
