// Shared harness for the Table 2 / Table 3 slowdown experiments.
//
// Paper §5, Table 2 (uniprocessor 133 MHz PowerPC, TPCD query on a 12 MB
// database): raw 52 s; simple backend 16149 s (310x); complex backend
// 34841 s (670x). Table 3: the same on a 4-way SMP, where COMPASS runs
// "more than twice as fast ... for the complex backend".
//
// Reproduction: the same scaled TPCD-like query runs (a) natively
// (detached contexts — the raw run), (b) under the simple backend, and
// (c) under the complex CC-NUMA backend; host parallelism is limited with
// the HostThrottle (1 permit = uniprocessor host; 0 = all host CPUs).
#pragma once

#include <algorithm>
#include <cstdio>

#include "stats/report.h"
#include "workloads/runner.h"

namespace compass::bench {

struct SlowdownResult {
  double raw_seconds = 0;
  double simple_seconds = 0;
  double complex_seconds = 0;
  double simple_slowdown = 0;
  double complex_slowdown = 0;
};

inline workloads::TpcdScenario slowdown_scenario() {
  workloads::TpcdScenario sc;
  sc.tpcd.lineitems = 2500;
  sc.tpcd.db.pool_pages = 96;
  sc.workers = 2;
  sc.repeats = 2;
  return sc;
}

/// Run raw + simple + complex with the given host-CPU limit.
inline SlowdownResult run_slowdown(int host_cpus, int native_repeats = 5) {
  const workloads::TpcdScenario sc = slowdown_scenario();

  // Raw: average several runs (it is fast enough to be noisy).
  double raw = 0;
  for (int i = 0; i < native_repeats; ++i)
    raw += workloads::run_tpcd_native_seconds(sc);
  raw /= native_repeats;

  // The simulated target is a 4-way machine (as in the paper's
  // architecture studies); the HOST parallelism is what Tables 2/3 vary.
  sim::SimulationConfig simple;
  simple.core.num_cpus = 4;
  simple.core.host_cpus = host_cpus;
  simple.model = sim::BackendModel::kSimple;

  sim::SimulationConfig complex_cfg;
  complex_cfg.core.num_cpus = 4;
  complex_cfg.core.num_nodes = 2;
  complex_cfg.core.host_cpus = host_cpus;
  complex_cfg.model = sim::BackendModel::kNuma;

  // Take the minimum of several runs: host scheduling noise on a shared
  // machine easily exceeds the simple/complex model-cost gap.
  auto best_of = [&sc](const sim::SimulationConfig& cfg, int n) {
    double best = 1e30;
    for (int i = 0; i < n; ++i)
      best = std::min(best, workloads::run_tpcd(cfg, sc).host_seconds);
    return best;
  };
  SlowdownResult r;
  r.raw_seconds = raw;
  r.simple_seconds = best_of(simple, 3);
  r.complex_seconds = best_of(complex_cfg, 3);
  r.simple_slowdown = r.simple_seconds / raw;
  r.complex_slowdown = r.complex_seconds / raw;
  return r;
}

inline void print_slowdown_table(const char* title, const SlowdownResult& r) {
  stats::Table table({"", "Raw", "Simple Backend", "Complex Backend"});
  table.add_row({"execution time (s)", stats::fmt(r.raw_seconds, 4),
                 stats::fmt(r.simple_seconds, 3),
                 stats::fmt(r.complex_seconds, 3)});
  table.add_row({"slowdown", "1", stats::fmt(r.simple_slowdown, 0),
                 stats::fmt(r.complex_slowdown, 0)});
  std::fputs(table.to_string(title).c_str(), stdout);
}

}  // namespace compass::bench
