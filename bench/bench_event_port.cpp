// Event-port / communicator microbenchmark (google-benchmark): the
// frontend-to-backend round trip is the fundamental cost of COMPASS's
// execution-driven design ("sending an event from the frontend to the
// backend will not cause a context switch" on an SMP host — here, host
// threads).
#include <benchmark/benchmark.h>

#include <thread>

#include "core/communicator.h"

using namespace compass;

namespace {

/// Round trip with a dedicated backend thread replying as fast as possible.
void BM_EventPortRoundTrip(benchmark::State& state) {
  core::Communicator comm(1);
  core::EventPort& port = comm.create_port(0);
  std::atomic<bool> stop{false};
  std::thread backend([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!port.has_pending()) continue;
      (void)port.take_batch();
      core::Reply r;
      r.resume_time = 1;
      port.reply(r);
    }
  });
  std::vector<core::Event> batch{
      core::Event::mem_ref(ExecMode::kUser, RefType::kLoad, 0x1000, 8, 0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(port.post_and_wait(batch));
  }
  stop = true;
  backend.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventPortRoundTrip);

/// Larger batches amortize the round trip (the interleave ablation's
/// mechanism).
void BM_EventPortBatched(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  core::Communicator comm(1);
  core::EventPort& port = comm.create_port(0);
  std::atomic<bool> stop{false};
  std::thread backend([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!port.has_pending()) continue;
      (void)port.take_batch();
      core::Reply r;
      r.resume_time = 1;
      port.reply(r);
    }
  });
  std::vector<core::Event> batch;
  for (std::size_t i = 0; i < batch_size; ++i)
    batch.push_back(core::Event::mem_ref(ExecMode::kUser, RefType::kLoad,
                                         0x1000 + i * 64, 8, i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(port.post_and_wait(batch));
  }
  stop = true;
  backend.join();
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_EventPortBatched)->Arg(1)->Arg(8)->Arg(64);

/// Full dispatch cycle at P simulated processors: wait for all running
/// frontends to post, pick the smallest execution time, take and reply.
/// items_per_second is dispatched batches per second — the backend's
/// dispatch throughput. (The name predates the pending-min index; the
/// "scan" is now an O(log P) tournament-tree lookup.)
void BM_PickMinScan(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  core::Communicator comm(1);
  std::vector<ProcId> running;
  std::vector<std::thread> posters;
  std::atomic<bool> stop{false};
  for (ProcId p = 0; p < nprocs; ++p) {
    core::EventPort& port = comm.create_port(p);
    running.push_back(p);
    posters.emplace_back([&port, &stop, p] {
      std::vector<core::Event> batch{core::Event::mem_ref(
          ExecMode::kUser, RefType::kLoad, 0x1000, 8, static_cast<Cycles>(p))};
      while (!stop.load(std::memory_order_relaxed)) {
        const core::Reply r = port.post_and_wait(batch);
        if (r.aborted) return;
        batch[0].time += 10;
      }
    });
  }
  for (auto _ : state) {
    comm.wait_all_pending(running);
    const ProcId winner = comm.pick_min(running);
    core::EventPort& port = comm.port(winner);
    (void)port.take_batch();
    core::Reply r;
    r.resume_time = 1;
    port.reply(r);
  }
  stop = true;
  comm.close_all_ports();
  for (auto& t : posters) t.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PickMinScan)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
