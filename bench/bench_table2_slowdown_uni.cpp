// Table 2 reproduction: simulation slowdown on a uniprocessor host.
//
// Paper: raw 52 s; simple backend 310x; complex backend 670x, for a TPCD
// query on a uniprocessor 133 MHz PowerPC. The absolute factors depend on
// the host; the shape to check is simple ≪ complex (roughly 2x apart) and
// both within an order of magnitude of the paper's hundreds-x range.
#include "slowdown_common.h"

using namespace compass;

int main() {
  const bench::SlowdownResult r = bench::run_slowdown(/*host_cpus=*/1);
  bench::print_slowdown_table(
      "Table 2: slowdown on a uniprocessor host (TPCD-like query; paper: "
      "raw 52s, simple 310x, complex 670x)",
      r);

  int failures = 0;
  // NOTE: the paper's 2.2x simple-vs-complex gap is compressed here: on a
  // modern host the event-port round trip dominates the per-event cost and
  // is identical for both backends, whereas on the 133 MHz host the model
  // computation dominated. The ordering must still hold.
  if (r.complex_slowdown < 0.95 * r.simple_slowdown) {
    std::printf("SHAPE MISMATCH: complex backend should not be faster than "
                "simple (got %.0fx vs %.0fx)\n",
                r.complex_slowdown, r.simple_slowdown);
    ++failures;
  } else if (r.complex_slowdown <= r.simple_slowdown) {
    std::printf("note: complex vs simple within host noise (%.0fx vs %.0fx); "
                "see EXPERIMENTS.md on gap compression\n",
                r.complex_slowdown, r.simple_slowdown);
  }
  if (!(r.simple_slowdown > 10)) {
    std::printf("SHAPE MISMATCH: simulation should be orders of magnitude "
                "slower than raw (got %.1fx)\n",
                r.simple_slowdown);
    ++failures;
  }
  if (failures == 0) std::printf("\nall Table 2 shape checks passed\n");
  return failures == 0 ? 0 : 1;
}
