// Checkpoint sampling benchmark: can K-cycle regions restored in parallel
// host processes cover an N-cycle tpcc run faster than the serial
// uninterrupted run?
//
// Phases:
//   1. serial    — uninterrupted tpcc on the NUMA model (the reference)
//   2. create    — same run snapshotting every N/5 cycles (checkpoint cost)
//   3. restore   — one region restored end-to-end (warp + install cost)
//   4. sample    — every region in its own forked process, in parallel;
//                  region 0 is the prefix run stopped at the first snapshot
//   5. warp      — at 32 simulated CPUs, the same prefix reached three
//                  ways: lived, self-serve warped (frontends replay their
//                  own shards) and port-paced warped (every batch still
//                  crosses the EventPort)
//
// The sampled phase is only a win when the warp fast-forward (host
// re-execution with the memory model skipped) beats live simulation and the
// host has real parallelism; under 4 host cores the phase is skipped with a
// note (CI enforces the speedup on >=4-core runners only, reading the JSON
// this bench writes). The warp phase is serial and always runs; CI gates
// its self-serve speedup (and the restore-vs-live ratio, via the
// --gbench-json output fed to tools/bench_gate.py) on >=4-core runners.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <iterator>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "util/flags.h"
#include "workloads/runner.h"

using namespace compass;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

sim::SimulationConfig bench_cfg() {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 8;
  cfg.core.num_nodes = 2;
  cfg.model = sim::BackendModel::kNuma;
  // Reference-granularity batches make every memory access a port round
  // trip, drowning the model work the warp skips in dispatch overhead.
  // Coarser batches (the ablation's speed design point; batch_size rides in
  // the config fingerprint, so restores re-run identically) put the NUMA
  // model on the critical path — the regime region sampling targets.
  cfg.core.batch_size = 64;
  return cfg;
}

workloads::ScenarioParams bench_params() {
  // A btree-heavy OLTP mix (big item table, long txn runs): the warp's win
  // is the skipped per-reference model work, so the region sampling pays
  // off on memory-bound runs, not on the I/O-wait-dominated default mix.
  return {"tpcc",
          {{"workers", "4"}, {"txns", "120"}, {"items", "4000"}}};
}

/// Stops an otherwise-live run at the first dispatch point past `stop`:
/// region 0 of the sampled phase, which no checkpoint file covers.
class StopHook final : public core::CkptHook {
 public:
  explicit StopHook(Cycles stop) : stop_(stop) {}
  bool warping() const override { return false; }
  Cycles window_boundary() const override { return stop_; }
  bool at_dispatch_point(core::Backend&, Cycles t) override {
    return t >= stop_;
  }
  void on_data_reply(ProcId, Cycles, const core::Reply&) override {}
  void on_control_reply(ProcId, const core::Reply&) override {}
  void on_deferred_reply(ProcId, const core::Reply&) override {}
  void warp_data_reply(ProcId, Cycles&, core::Reply&) override {}
  void warp_control_reply(ProcId, core::Reply&) override {}
  void warp_deferred_reply(ProcId, core::Reply&) override {}

 private:
  Cycles stop_;
};

int run_region(const std::vector<std::string>& files, std::size_t region,
               const std::vector<Cycles>& quiescents, Cycles full_cycles) {
  try {
    if (region == 0) {
      sim::SimulationConfig cfg = bench_cfg();
      StopHook stop(quiescents.front());
      cfg.ckpt = &stop;
      workloads::run_scenario(cfg, bench_params());
      return 0;
    }
    const std::size_t i = region - 1;
    ckpt::CheckpointFile f = ckpt::read_file(files[i]);
    sim::SimulationConfig cfg = ckpt::config_from(f);
    const Cycles run_for = i + 1 < quiescents.size()
                               ? quiescents[i + 1] - quiescents[i]
                               : full_cycles;  // last region: to completion
    ckpt::CheckpointRestorer restorer(std::move(f), run_for);
    cfg.ckpt = &restorer;
    cfg.post_build = [&restorer](sim::Simulation& s) { restorer.bind(s); };
    workloads::run_scenario(cfg, bench_params());
    return restorer.installed() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "region %zu: %s\n", region, e.what());
    std::fflush(nullptr);
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(
        argc, argv, {{"json", "bench_ckpt.json"}, {"gbench-json", ""}},
        {{"json", "write phase timings to this JSON file"},
         {"gbench-json",
          "also write google-benchmark-format entries (warp phase + "
          "restore-vs-live ratio) for tools/bench_gate.py"}});
    const unsigned cores = std::thread::hardware_concurrency();

    // Phase 1: serial reference.
    auto t0 = std::chrono::steady_clock::now();
    const workloads::ScenarioStats serial =
        workloads::run_scenario(bench_cfg(), bench_params());
    const double serial_s = seconds_since(t0);
    std::printf("serial   %8.2fs  %llu cycles, %llu work units\n", serial_s,
                static_cast<unsigned long long>(serial.cycles),
                static_cast<unsigned long long>(serial.work_units));

    // Phase 2: create run, snapshotting every N/5 cycles.
    const Cycles every = serial.cycles / 5;
    ckpt::CreateOptions opts;
    opts.out = "bench_ckpt.tmp";
    opts.every = every;
    opts.meta = bench_params().kv;
    opts.meta["workload"] = bench_params().workload;
    sim::SimulationConfig create_cfg = bench_cfg();
    ckpt::CheckpointWriter writer(create_cfg, opts);
    create_cfg.ckpt = &writer;
    create_cfg.post_build = [&writer](sim::Simulation& s) { writer.bind(s); };
    t0 = std::chrono::steady_clock::now();
    workloads::run_scenario(create_cfg, bench_params());
    const double create_s = seconds_since(t0);
    const std::vector<std::string>& files = writer.written();
    std::printf("create   %8.2fs  %zu snapshots every %llu cycles "
                "(+%.0f%% over serial)\n",
                create_s, files.size(),
                static_cast<unsigned long long>(every),
                100.0 * (create_s - serial_s) / serial_s);
    if (files.empty()) {
      std::fprintf(stderr, "bench_ckpt: no snapshots written\n");
      return 1;
    }
    std::vector<Cycles> quiescents;
    for (const std::string& path : files)
      quiescents.push_back(ckpt::read_file(path).quiescent);

    // Phase 3: one region restored end-to-end (warp + install + live tail).
    t0 = std::chrono::steady_clock::now();
    {
      ckpt::CheckpointFile f = ckpt::read_file(files.back());
      sim::SimulationConfig cfg = ckpt::config_from(f);
      ckpt::CheckpointRestorer restorer(std::move(f), 0);
      cfg.ckpt = &restorer;
      cfg.post_build = [&restorer](sim::Simulation& s) { restorer.bind(s); };
      workloads::run_scenario(cfg, bench_params());
      if (!restorer.installed()) {
        std::fprintf(stderr, "bench_ckpt: restore never installed\n");
        return 1;
      }
    }
    const double restore_s = seconds_since(t0);
    std::printf("restore  %8.2fs  last region (warp to %llu + live tail)\n",
                restore_s,
                static_cast<unsigned long long>(quiescents.back()));

    // Phase 4: sampled parallel coverage — region 0 is the prefix, region i
    // restores checkpoint i-1 and simulates up to the next snapshot.
    double sample_s = 0;
    double speedup = 0;
    const std::size_t regions = files.size() + 1;
    if (cores < 4) {
      std::printf("sample   SKIP (needs >=4 host cores, have %u)\n", cores);
    } else {
      std::fflush(nullptr);  // children must not inherit buffered output
      t0 = std::chrono::steady_clock::now();
      std::vector<pid_t> pids;
      for (std::size_t r = 0; r < regions; ++r) {
        const pid_t pid = fork();
        if (pid == 0)
          _exit(run_region(files, r, quiescents, serial.cycles));
        if (pid < 0) {
          std::fprintf(stderr, "bench_ckpt: fork failed\n");
          return 1;
        }
        pids.push_back(pid);
      }
      bool ok = true;
      for (const pid_t pid : pids) {
        int status = 0;
        waitpid(pid, &status, 0);
        ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      sample_s = seconds_since(t0);
      if (!ok) {
        std::fprintf(stderr, "bench_ckpt: a sampled region failed\n");
        return 1;
      }
      speedup = serial_s / sample_s;
      std::printf("sample   %8.2fs  %zu parallel regions covering all %llu "
                  "cycles  (%.2fx vs serial)\n",
                  sample_s, regions,
                  static_cast<unsigned long long>(serial.cycles), speedup);
    }

    // Phase 5: warp skip-ahead at 32 simulated CPUs — the regime the warp
    // targets: per-reference NUMA model work dominates, so replaying the
    // prefix from the recorded replies should far outpace living it.
    sim::SimulationConfig warp_cfg = bench_cfg();
    warp_cfg.core.num_cpus = 32;
    warp_cfg.core.num_nodes = 4;
    const workloads::ScenarioParams warp_params = {
        "tpcc", {{"workers", "8"}, {"txns", "40"}, {"items", "4000"}}};
    t0 = std::chrono::steady_clock::now();
    const workloads::ScenarioStats live32 =
        workloads::run_scenario(warp_cfg, warp_params);
    const double live32_s = seconds_since(t0);
    const Cycles warp_at = live32.cycles * 3 / 4;

    ckpt::CreateOptions warp_opts;
    warp_opts.out = "bench_ckpt_warp.tmp";
    warp_opts.at_cycles = {warp_at};
    warp_opts.meta = warp_params.kv;
    warp_opts.meta["workload"] = warp_params.workload;
    sim::SimulationConfig warp_create_cfg = warp_cfg;
    ckpt::CheckpointWriter warp_writer(warp_create_cfg, warp_opts);
    warp_create_cfg.ckpt = &warp_writer;
    warp_create_cfg.post_build = [&warp_writer](sim::Simulation& s) {
      warp_writer.bind(s);
    };
    workloads::run_scenario(warp_create_cfg, warp_params);
    if (warp_writer.written().size() != 1) {
      std::fprintf(stderr, "bench_ckpt: warp snapshot not written\n");
      return 1;
    }
    const std::string warp_file = warp_writer.written().front();
    const Cycles warp_quiescent = ckpt::read_file(warp_file).quiescent;

    // Live leg: simulate the prefix and stop where the snapshot landed.
    t0 = std::chrono::steady_clock::now();
    {
      sim::SimulationConfig cfg = warp_cfg;
      StopHook stop(warp_at);
      cfg.ckpt = &stop;
      workloads::run_scenario(cfg, warp_params);
    }
    const double warp_live_s = seconds_since(t0);

    // Warp legs: fast-forward to the same point through each warp path,
    // then stop immediately (run_for=1) — warp + install cost only.
    double warp_leg_s[2] = {0, 0};
    const ckpt::WarpMode modes[2] = {ckpt::WarpMode::kSelfServe,
                                     ckpt::WarpMode::kPortPaced};
    for (int leg = 0; leg < 2; ++leg) {
      t0 = std::chrono::steady_clock::now();
      ckpt::CheckpointFile f = ckpt::read_file(warp_file);
      sim::SimulationConfig cfg = ckpt::config_from(f);
      ckpt::CheckpointRestorer restorer(std::move(f), /*run_for=*/1,
                                        modes[leg]);
      cfg.ckpt = &restorer;
      cfg.post_build = [&restorer](sim::Simulation& s) { restorer.bind(s); };
      workloads::run_scenario(cfg, warp_params);
      if (!restorer.installed()) {
        std::fprintf(stderr, "bench_ckpt: warp leg %d never installed\n", leg);
        return 1;
      }
      warp_leg_s[leg] = seconds_since(t0);
    }
    const double warp_self_s = warp_leg_s[0];
    const double warp_port_s = warp_leg_s[1];
    const double warp_speedup = warp_live_s / warp_self_s;
    std::remove(warp_file.c_str());
    std::printf("warp     live %.2fs | self-serve %.2fs (%.2fx) | "
                "port-paced %.2fs (%.2fx)  to cycle %llu of %llu @32 cpus\n",
                warp_live_s, warp_self_s, warp_speedup, warp_port_s,
                warp_live_s / warp_port_s,
                static_cast<unsigned long long>(warp_quiescent),
                static_cast<unsigned long long>(live32.cycles));

    const std::string json = flags.get("json");
    if (!json.empty()) {
      std::FILE* f = std::fopen(json.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "bench_ckpt: cannot write %s\n", json.c_str());
        return 1;
      }
      std::fprintf(f,
                   "{\n"
                   "  \"host_cores\": %u,\n"
                   "  \"cycles\": %llu,\n"
                   "  \"snapshots\": %zu,\n"
                   "  \"serial_s\": %.4f,\n"
                   "  \"create_s\": %.4f,\n"
                   "  \"restore_s\": %.4f,\n"
                   "  \"sample_s\": %.4f,\n"
                   "  \"speedup\": %.4f,\n"
                   "  \"warp_cycles\": %llu,\n"
                   "  \"warp_live_s\": %.4f,\n"
                   "  \"warp_self_s\": %.4f,\n"
                   "  \"warp_port_s\": %.4f,\n"
                   "  \"warp_speedup\": %.4f\n"
                   "}\n",
                   cores, static_cast<unsigned long long>(serial.cycles),
                   files.size(), serial_s, create_s, restore_s, sample_s,
                   speedup, static_cast<unsigned long long>(warp_quiescent),
                   warp_live_s, warp_self_s, warp_port_s, warp_speedup);
      std::fclose(f);
    }
    const std::string gbench = flags.get("gbench-json");
    if (!gbench.empty()) {
      // google-benchmark shape so tools/bench_gate.py can gate these next
      // to the real benches. The ratio entry is dimensionless; the gate
      // only compares each entry against its own baseline, so the unit is
      // irrelevant there.
      std::FILE* f = std::fopen(gbench.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "bench_ckpt: cannot write %s\n", gbench.c_str());
        return 1;
      }
      const struct {
        const char* name;
        double value;
      } entries[] = {
          {"BM_CkptWarpLivePrefix/cpus:32/real_time", warp_live_s * 1e9},
          {"BM_CkptWarpSelfServe/cpus:32/real_time", warp_self_s * 1e9},
          {"BM_CkptWarpPortPaced/cpus:32/real_time", warp_port_s * 1e9},
          {"BM_CkptRestoreVsLive/ratio", restore_s / serial_s},
      };
      std::fprintf(f, "{\n  \"benchmarks\": [\n");
      for (std::size_t i = 0; i < std::size(entries); ++i)
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"real_time\": %.4f, "
                     "\"time_unit\": \"ns\"}%s\n",
                     entries[i].name, entries[i].value,
                     i + 1 < std::size(entries) ? "," : "");
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
    }
    for (const std::string& path : files) std::remove(path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_ckpt: %s\n", e.what());
    return 2;
  }
}
