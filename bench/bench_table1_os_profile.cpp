// Table 1 reproduction: "User vs. OS time" for the three commercial
// workloads on a 4-way SMP, plus the scientific baseline the introduction
// contrasts against.
//
// Paper (4-way AIX/PowerPC SMP, CPU time excluding disk-wait):
//   SPECWeb/Apache:   user 14.9%, OS 85.1% (interrupt 37.8%, kernel 47.3%)
//   TPCD/DB2 (100MB): user 81%,   OS 19%   (interrupt  8.6%, kernel 10.4%)
//   TPCC/DB2 (400MB): user 79%,   OS 21%   (interrupt 14.6%, kernel  6.4%)
//
// We run scaled-down synthetic equivalents; the shape to check is the
// ordering (web ≫ OLTP ≈ DSS ≫ scientific in OS share) and the interrupt/
// kernel split per workload.
#include <cstdio>

#include "stats/report.h"
#include "workloads/runner.h"

using namespace compass;

namespace {

struct Row {
  const char* name;
  const char* paper;
  workloads::ScenarioStats stats;
};

sim::SimulationConfig four_way() {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  cfg.model = sim::BackendModel::kSimple;
  // Interval timer on: its handler is part of the paper's interrupt share.
  cfg.devices.timer_interval = 1'000'000;  // 10ms at 100MHz
  cfg.devices.timer_per_cpu = true;
  return cfg;
}

}  // namespace

int main() {
  std::vector<Row> rows;

  {
    workloads::WebScenario sc;
    sc.fileset.dirs = 3;
    sc.fileset.files_per_class = 2;
    sc.fileset.size_scale = 0.25;
    sc.requests = 60;
    sc.servers = 3;
    sc.concurrency = 6;
    sc.mean_gap = 20'000;
    sc.think = 10'000;
    rows.push_back({"SPECWeb/Apache", "14.9 / 85.1 (37.8 + 47.3)",
                    workloads::run_web(four_way(), sc)});
  }
  {
    workloads::TpcdScenario sc;
    sc.tpcd.lineitems = 8000;      // ~127-page fact table
    sc.tpcd.db.pool_pages = 112;   // smaller than the table: scans do I/O
    sc.tpcd.db.direct_io = false;  // DSS reads through the file-system cache
    sc.workers = 4;
    sc.repeats = 3;
    sim::SimulationConfig cfg = four_way();
    cfg.kernel.buffer_cache_buffers = 96;  // < table: scans reach the disks
    rows.push_back({"TPCD/DB2 (scaled)", "81 / 19 (8.6 + 10.4)",
                    workloads::run_tpcd(cfg, sc)});
  }
  {
    workloads::TpccScenario sc;
    sc.tpcc.warehouses = 4;
    sc.tpcc.items = 1500;          // stock spans ~100 pages
    sc.tpcc.txns_per_worker = 30;
    sc.tpcc.db.pool_pages = 96;    // hot set mostly resident; tail I/O
    sc.workers = 4;
    rows.push_back({"TPCC/DB2 (scaled)", "79 / 21 (14.6 + 6.4)",
                    workloads::run_tpcc(four_way(), sc)});
  }
  {
    workloads::SciScenario sc;
    sc.matmul.n = 48;
    sc.matmul.nprocs = 4;
    rows.push_back({"SPLASH-like matmul", "~100 / ~0 (baseline)",
                    workloads::run_sci(four_way(), sc)});
  }

  stats::Table table({"benchmark", "user", "OS total", "interrupt", "kernel",
                      "paper (user/OS (int + kern))"});
  for (const auto& r : rows) {
    table.add_row({r.name, stats::pct(r.stats.shares.user),
                   stats::pct(r.stats.shares.os_total),
                   stats::pct(r.stats.shares.interrupt),
                   stats::pct(r.stats.shares.kernel), r.paper});
  }
  std::fputs(
      table
          .to_string(
              "Table 1: user vs OS time, 4 simulated CPUs (busy time only)")
          .c_str(),
      stdout);

  // Shape checks (exit nonzero if the qualitative result is off).
  const auto& web = rows[0].stats.shares;
  const auto& tpcd = rows[1].stats.shares;
  const auto& tpcc = rows[2].stats.shares;
  const auto& sci = rows[3].stats.shares;
  int failures = 0;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::printf("SHAPE MISMATCH: %s\n", what);
      ++failures;
    }
  };
  expect(web.os_total > 60.0, "web should be OS-dominated (>60%)");
  expect(web.os_total > tpcc.os_total + 20.0,
         "web OS share should far exceed OLTP's");
  expect(tpcc.os_total > 8.0 && tpcc.os_total < 45.0,
         "TPCC OS share should be moderate (~21% in the paper)");
  expect(tpcd.os_total > 8.0 && tpcd.os_total < 45.0,
         "TPCD OS share should be moderate (~19% in the paper)");
  expect(tpcc.interrupt > tpcc.kernel * 0.8,
         "TPCC interrupt share should rival its kernel share");
  expect(sci.os_total < 10.0, "scientific kernel should be OS-light");
  if (failures == 0) std::printf("\nall Table 1 shape checks passed\n");
  return failures == 0 ? 0 : 1;
}
