// OS-server cost benchmark: simulated-cycle cost of representative
// category-1 OS calls (paper §3.1's stub → OS port → OS thread → event
// port pipeline), measured from inside a simulation, plus the host-side
// cost of the whole round trip.
#include <chrono>
#include <cstdio>

#include "stats/report.h"
#include "os/fs.h"
#include "sim/simulation.h"

using namespace compass;

int main() {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 1;
  sim::Simulation sim(cfg);
  std::vector<std::uint8_t> content(64 * 1024, 0x5A);
  sim.kernel().fs().populate("/bench/data", content);

  struct Row {
    std::string name;
    Cycles cycles;
    int count;
  };
  std::vector<Row> rows;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t total_calls = 0;

  sim.spawn("bench", [&](sim::Proc& p) {
    auto measure = [&](const std::string& name, int n, auto&& fn) {
      const Cycles before = p.ctx().time();
      for (int i = 0; i < n; ++i) fn(i);
      rows.push_back(Row{name, (p.ctx().time() - before) / static_cast<Cycles>(n), n});
      total_calls += static_cast<std::uint64_t>(n);
    };

    measure("getpid (null call)", 50, [&](int) { p.getpid(); });
    measure("statx (cached path)", 50, [&](int) { p.statx("/bench/data"); });

    const auto fd = p.open("/bench/data");
    const Addr buf = p.alloc(8192);
    // Warm the buffer cache.
    p.read_fd(fd, buf, 4096);
    measure("kread 4KB (buffer-cache hit)", 30, [&](int) {
      p.lseek(fd, 0, 0);
      p.read_fd(fd, buf, 4096);
    });
    measure("kread 4KB (disk miss)", 10, [&](int i) {
      // A fresh page each time: page i+2 of the 16-page file.
      p.lseek(fd, (2 + i) * 4096, 0);
      p.read_fd(fd, buf, 4096);
    });
    measure("kwrite 4KB (cache)", 30, [&](int) {
      p.lseek(fd, 0, 0);
      p.write_fd(fd, buf, 4096);
    });
    measure("fsync (1 dirty page)", 5, [&](int) {
      p.write_fd(fd, buf, 128);
      p.fsync(fd);
    });
    p.close(fd);

    measure("sem P/V pair (uncontended)", 50, [&](int) {
      p.sem_init(1, 0);
      p.sem_v(1);
      p.sem_p(1);
    });
  });
  sim.run();
  const double host_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  stats::Table table({"OS call", "simulated cycles/call", "samples"});
  for (const auto& r : rows)
    table.add_row({r.name, stats::with_commas(r.cycles), std::to_string(r.count)});
  std::fputs(table.to_string("OS-server call costs").c_str(), stdout);
  std::printf("\ntotal %llu calls, %.3f host seconds, %.1f us host per call "
              "(incl. all simulation overhead)\n",
              static_cast<unsigned long long>(total_calls), host_s,
              1e6 * host_s / static_cast<double>(total_calls));
  return 0;
}
