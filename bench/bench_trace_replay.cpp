// Trace-replay throughput (google-benchmark): how fast the backend
// re-consumes a recorded event stream versus executing the workload live.
// items_per_second counts backend-consumed events, directly comparable to
// the live-run variant below and to bench_event_port's round-trip rate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/config_codec.h"
#include "trace/trace_reader.h"
#include "trace/trace_recorder.h"
#include "trace/trace_replayer.h"
#include "workloads/runner.h"

using namespace compass;

namespace {

std::string temp_trace_path() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/compass_bench_trace_replay.trace";
}

sim::SimulationConfig bench_config() {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = 4;
  cfg.model = sim::BackendModel::kSimple;
  return cfg;
}

workloads::SciScenario bench_scenario() {
  workloads::SciScenario sc;
  sc.matmul.n = 24;
  sc.matmul.block = 8;
  sc.matmul.nprocs = 2;
  return sc;
}

/// Records once, lazily, and hands out the decoded trace.
const trace::TraceData& recorded_trace() {
  static const trace::TraceData data = [] {
    const std::string path = temp_trace_path();
    sim::SimulationConfig cfg = bench_config();
    trace::TraceRecorder recorder(cfg, path);
    cfg.trace_sink = &recorder;
    (void)workloads::run_sci(cfg, bench_scenario());
    recorder.finalize();
    trace::TraceData d = trace::TraceReader::read_file(path);
    std::remove(path.c_str());
    return d;
  }();
  return data;
}

void BM_TraceReplaySci(benchmark::State& state) {
  const trace::TraceData& data = recorded_trace();
  const sim::SimulationConfig cfg = trace::decode_config(data.config);
  for (auto _ : state) {
    trace::TraceReplayer replayer(data, cfg);
    replayer.run();
    benchmark::DoNotOptimize(replayer.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.total_events));
}
BENCHMARK(BM_TraceReplaySci)->Unit(benchmark::kMillisecond);

/// The same workload executed live (frontend code + OS server), so the
/// record-once-replay-many speedup is visible in one report.
void BM_LiveSci(benchmark::State& state) {
  const std::int64_t events =
      static_cast<std::int64_t>(recorded_trace().total_events);
  for (auto _ : state) {
    const workloads::ScenarioStats st =
        workloads::run_sci(bench_config(), bench_scenario());
    benchmark::DoNotOptimize(st.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          events);
}
BENCHMARK(BM_LiveSci)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
