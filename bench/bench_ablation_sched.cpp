// Process-scheduler ablation (paper §3.3.2): FCFS ("default") vs affinity
// ("optimized"), each optionally with preemption, on an OLTP run with more
// server processes than simulated CPUs.
//
// Affinity should reduce runtime via warmer caches (higher L1 hit rate on
// reschedule); preemption trades throughput for responsiveness (more
// context switches).
#include <cstdio>

#include "stats/report.h"
#include "workloads/runner.h"

using namespace compass;

int main() {
  workloads::TpccScenario sc;
  sc.tpcc.warehouses = 2;
  sc.tpcc.items = 600;
  sc.tpcc.txns_per_worker = 25;
  sc.tpcc.db.pool_pages = 48;  // plenty of blocking I/O: CPUs go free
  sc.workers = 6;  // more processes than the 4 CPUs

  struct Config {
    const char* name;
    core::SchedPolicy policy;
    bool preemptive;
  };
  const Config configs[] = {
      {"FCFS", core::SchedPolicy::kFcfs, false},
      {"affinity", core::SchedPolicy::kAffinity, false},
      {"FCFS+preempt", core::SchedPolicy::kFcfs, true},
      {"affinity+preempt", core::SchedPolicy::kAffinity, true},
  };

  stats::Table table({"scheduler", "sim cycles", "L1 hit %", "ctx switches",
                      "preemptions"});
  std::vector<workloads::ScenarioStats> results;
  for (const auto& c : configs) {
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = 4;
    cfg.core.num_nodes = 2;        // affinity's node fallback is meaningful
    cfg.core.sched_policy = c.policy;
    cfg.core.preemptive = c.preemptive;
    cfg.core.quantum = 50'000;
    const auto stats = workloads::run_tpcc(cfg, sc);
    results.push_back(stats);
    const double hit_rate =
        stats.l1_hits + stats.l1_misses == 0
            ? 0
            : 100.0 * static_cast<double>(stats.l1_hits) /
                  static_cast<double>(stats.l1_hits + stats.l1_misses);
    table.add_row({c.name, stats::with_commas(stats.cycles),
                   stats::fmt(hit_rate, 2),
                   stats::with_commas(stats.context_switches),
                   stats::with_commas(stats.preemptions)});
  }
  std::fputs(table
                 .to_string("Process-scheduler ablation (6 OLTP processes on "
                            "4 CPUs / 2 nodes)")
                 .c_str(),
             stdout);

  int failures = 0;
  // Preemptive runs must actually preempt; non-preemptive must not.
  if (results[0].preemptions != 0 || results[1].preemptions != 0) {
    std::printf("SHAPE MISMATCH: non-preemptive configs preempted\n");
    ++failures;
  }
  if (results[2].preemptions == 0 || results[3].preemptions == 0) {
    std::printf("SHAPE MISMATCH: preemptive configs never preempted\n");
    ++failures;
  }
  if (failures == 0) std::printf("\nall scheduler ablation checks passed\n");
  return failures == 0 ? 0 : 1;
}
