// Page-placement ablation (paper §3.3.1): round-robin vs block vs
// first-touch home-node assignment for a TPCD-like parallel scan on the
// complex CC-NUMA backend.
//
// First-touch should localize the private/partitioned accesses (lowest
// remote share); round-robin spreads pages blindly (highest remote share);
// block sits between for partitioned scans.
#include <cstdio>

#include "stats/report.h"
#include "workloads/runner.h"

using namespace compass;

int main() {
  workloads::TpcdScenario sc;
  sc.tpcd.lineitems = 2500;
  sc.tpcd.db.pool_pages = 128;
  sc.workers = 4;
  sc.repeats = 2;

  struct Point {
    mem::PlacementPolicy placement;
    workloads::ScenarioStats stats;
  };
  std::vector<Point> points;
  for (const auto placement :
       {mem::PlacementPolicy::kRoundRobin, mem::PlacementPolicy::kBlock,
        mem::PlacementPolicy::kFirstTouch}) {
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = 4;
    cfg.core.num_nodes = 2;
    cfg.model = sim::BackendModel::kNuma;
    cfg.placement = placement;
    points.push_back({placement, workloads::run_tpcd(cfg, sc)});
  }

  stats::Table table({"placement", "sim cycles", "local", "remote",
                      "remote %"});
  for (const auto& p : points) {
    const auto total = p.stats.numa_local + p.stats.numa_remote;
    const double remote_pct =
        total == 0 ? 0
                   : 100.0 * static_cast<double>(p.stats.numa_remote) /
                         static_cast<double>(total);
    table.add_row({std::string(mem::to_string(p.placement)),
                   stats::with_commas(p.stats.cycles),
                   stats::with_commas(p.stats.numa_local),
                   stats::with_commas(p.stats.numa_remote),
                   stats::fmt(remote_pct, 1)});
  }
  std::fputs(table
                 .to_string("Page-placement ablation (TPCD-like scan, 4 CPUs "
                            "/ 2 NUMA nodes)")
                 .c_str(),
             stdout);

  auto remote_share = [](const workloads::ScenarioStats& s) {
    const auto total = s.numa_local + s.numa_remote;
    return total == 0 ? 0.0
                      : static_cast<double>(s.numa_remote) /
                            static_cast<double>(total);
  };
  int failures = 0;
  if (!(remote_share(points[2].stats) < remote_share(points[0].stats))) {
    std::printf("SHAPE MISMATCH: first-touch should have a lower remote "
                "share than round-robin\n");
    ++failures;
  }
  if (failures == 0) std::printf("\nall placement ablation checks passed\n");
  return failures == 0 ? 0 : 1;
}
