// mmap-vs-kreadv ablation (paper §3, Table 1 discussion): TPCD's
// significant OS calls are "kwritev, kreadv, mmap, munmap and msync" —
// DB2's DSS scans could reach file data either through read calls or
// through mapped files. This bench runs the same Q1 aggregation through
// (a) the buffer pool (kreadv per miss) and (b) an mmap'ed file (one bulk
// paging I/O + user-mode references), and compares cycles and the
// user/kernel split.
#include <cstdio>

#include "stats/report.h"
#include "workloads/runner.h"

using namespace compass;

int main() {
  workloads::TpcdScenario base;
  base.tpcd.lineitems = 4000;
  base.tpcd.db.pool_pages = 48;  // pool misses on every scan
  base.tpcd.db.direct_io = false;
  base.workers = 1;
  base.repeats = 2;

  auto run_variant = [&](bool use_mmap) {
    workloads::TpcdScenario sc = base;
    sc.use_mmap = use_mmap;
    sim::SimulationConfig cfg;
    cfg.core.num_cpus = 2;
    return workloads::run_tpcd(cfg, sc);
  };

  const auto via_read = run_variant(false);
  const auto via_mmap = run_variant(true);

  stats::Table table({"access path", "sim cycles", "user %", "kernel %",
                      "interrupt %", "disk reads", "syscalls"});
  auto add = [&](const char* name, const workloads::ScenarioStats& s) {
    table.add_row({name, stats::with_commas(s.cycles),
                   stats::fmt(s.shares.user, 1), stats::fmt(s.shares.kernel, 1),
                   stats::fmt(s.shares.interrupt, 1),
                   stats::with_commas(s.disk_reads),
                   stats::with_commas(s.syscalls)});
  };
  add("buffer pool (kreadv)", via_read);
  add("mmap + msync", via_mmap);
  std::fputs(table
                 .to_string("TPCD Q1 access-path ablation (Q1+Q6 via pool vs "
                            "Q1 via mmap)")
                 .c_str(),
             stdout);

  int failures = 0;
  // mmap collapses per-page read calls into a handful of mmap/msync/munmap
  // calls plus bulk paging I/O.
  if (!(via_mmap.syscalls < via_read.syscalls / 2)) {
    std::printf("SHAPE MISMATCH: mmap should need far fewer OS calls "
                "(%llu vs %llu)\n",
                static_cast<unsigned long long>(via_mmap.syscalls),
                static_cast<unsigned long long>(via_read.syscalls));
    ++failures;
  }
  if (!(via_mmap.shares.kernel < via_read.shares.kernel)) {
    std::printf("SHAPE MISMATCH: mmap should shift time out of the kernel "
                "(%.1f%% vs %.1f%%)\n",
                via_mmap.shares.kernel, via_read.shares.kernel);
    ++failures;
  }
  if (failures == 0) std::printf("\nall mmap ablation checks passed\n");
  return failures == 0 ? 0 : 1;
}
