// fault_fuzz: randomized fault-plan + schedule-jitter fuzzing over the
// canned workloads.
//
// Each trial derives a fresh FaultPlan (small per-site rates, random seed,
// random scheduler jitter, and — for tpcc — an occasional WAL crash point)
// from the trial seed, runs the workload to completion and checks
// invariants:
//
//   * the simulation quiesces — no event-port deadlock, no unhandled
//     SimError (COMPASS_CHECK failures and backend deadlock dumps both
//     surface as exceptions and fail the trial);
//   * fault counters balance: recovered <= injected per kind, and every
//     retried family (disk, net drop, oscall) that injected also recovered;
//   * workload consistency: web completes every request; tpcc's table
//     invariant sum(STOCK.ytd) == sum(ORDERLINE.amount) holds even across
//     a WAL crash, and recovery replays exactly the committed prefix;
//     tpcd's repeated Q1/Q6 scans over the immutable LINEITEM table return
//     bit-identical answers on every repeat.
//
// With --ckpt-at=T each trial additionally snapshots itself at the first
// dispatch point past cycle T (when the faulted run lives that long),
// restores the snapshot in a fresh simulation and re-checks every invariant
// on the restored run — then requires the restored run's final cycle count,
// work units and counters to match the uninterrupted trial exactly. This
// fuzzes checkpoint/restore across random fault plans, worker counts,
// filter settings and memory-system models (cache vs numa — both drive the
// sharded lane-B window path); the repro line carries the checkpoint offset.
//
// A failing trial prints its seed, the full plan and a one-line repro
// command, then the driver exits non-zero.
//
//   fault_fuzz --workload=tpcc --trials=100 --seed0=1 --ckpt-at=2000000
#include <cstdio>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "fault/fault_plan.h"
#include "trace/golden.h"
#include "util/flags.h"
#include "util/rng.h"
#include "workloads/runner.h"

using namespace compass;

namespace {

fault::FaultPlan random_plan(util::Rng& r, const std::string& workload) {
  fault::FaultPlan p;
  p.seed = r.next_u64();
  p.disk_error_prob = r.next_double() * 0.04;
  p.disk_timeout_prob = r.next_double() * 0.03;
  p.net_drop_prob = r.next_double() * 0.06;
  p.net_dup_prob = r.next_double() * 0.06;
  p.net_corrupt_prob = r.next_double() * 0.06;
  p.oscall_eintr_prob = r.next_double() * 0.03;
  p.oscall_enomem_prob = r.next_double() * 0.02;
  p.oscall_eio_prob = r.next_double() * 0.02;
  p.sched_jitter_prob = r.next_double();
  p.sched_jitter_cycles = static_cast<Cycles>(r.next_in(0, 8'000));
  if (workload == "tpcc" && r.next_bool(0.4))
    p.wal_crash_at = static_cast<std::uint64_t>(r.next_in(5, 60));
  p.validate();
  return p;
}

std::string describe(const fault::FaultPlan& p) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "seed=%llu disk_error=%.4f disk_timeout=%.4f net_drop=%.4f "
      "net_dup=%.4f net_corrupt=%.4f eintr=%.4f enomem=%.4f eio=%.4f "
      "sched_jitter=%.4f/%llu wal_crash_at=%llu",
      static_cast<unsigned long long>(p.seed), p.disk_error_prob,
      p.disk_timeout_prob, p.net_drop_prob, p.net_dup_prob, p.net_corrupt_prob,
      p.oscall_eintr_prob, p.oscall_enomem_prob, p.oscall_eio_prob,
      p.sched_jitter_prob,
      static_cast<unsigned long long>(p.sched_jitter_cycles),
      static_cast<unsigned long long>(p.wal_crash_at));
  return buf;
}

std::uint64_t cnt(const stats::StatsSnapshot& snap, const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// Throws std::runtime_error on any counter-balance violation.
void check_counters(const stats::StatsSnapshot& snap) {
  static constexpr const char* kKinds[] = {
      "disk_error",   "disk_timeout",  "net_drop",   "net_dup", "net_corrupt",
      "oscall_eintr", "oscall_enomem", "oscall_eio", "sched_jitter",
      "wal_crash"};
  for (const char* k : kKinds) {
    const std::uint64_t inj = cnt(snap, std::string("fault.injected.") + k);
    const std::uint64_t rec = cnt(snap, std::string("fault.recovered.") + k);
    if (rec > inj)
      throw std::runtime_error(std::string("recovered > injected for ") + k +
                               " (" + std::to_string(rec) + " > " +
                               std::to_string(inj) + ")");
  }
  // Retried families always recover: the injector forces success within the
  // retry bound, and the recovery is attributed to the family's last fault.
  struct Family {
    const char* name;
    const char* kinds[3];
  };
  static constexpr Family kFamilies[] = {
      {"disk", {"disk_error", "disk_timeout", nullptr}},
      {"net_drop", {"net_drop", nullptr, nullptr}},
      {"oscall", {"oscall_eintr", "oscall_enomem", "oscall_eio"}},
  };
  for (const Family& f : kFamilies) {
    std::uint64_t inj = 0, rec = 0;
    for (const char* k : f.kinds) {
      if (k == nullptr) continue;
      inj += cnt(snap, std::string("fault.injected.") + k);
      rec += cnt(snap, std::string("fault.recovered.") + k);
    }
    if (inj > 0 && rec == 0)
      throw std::runtime_error(std::string("family ") + f.name + " injected " +
                               std::to_string(inj) + " but recovered none");
  }
}

// ---- per-workload trials ----------------------------------------------------

workloads::ScenarioStats trial_sci(sim::SimulationConfig cfg) {
  workloads::SciScenario sc;
  sc.matmul.n = 16;
  sc.matmul.nprocs = 2;
  const workloads::ScenarioStats st = workloads::run_sci(cfg, sc);
  if (st.work_units != 1) throw std::runtime_error("sci did not complete");
  check_counters(st.snapshot);
  return st;
}

workloads::ScenarioStats trial_web(sim::SimulationConfig cfg) {
  workloads::WebScenario sc;
  sc.requests = 12;
  const workloads::ScenarioStats st = workloads::run_web(cfg, sc);
  // Retransmission and oscall retries must be invisible to the client:
  // every request completes despite drops, dups and corruption.
  if (st.work_units != sc.requests)
    throw std::runtime_error("web completed " + std::to_string(st.work_units) +
                             "/" + std::to_string(sc.requests) + " requests");
  check_counters(st.snapshot);
  return st;
}

workloads::ScenarioStats trial_tpcc(sim::SimulationConfig cfg) {
  constexpr std::int64_t kStartSem = 9001;
  constexpr std::int64_t kDoneSem = 9002;
  workloads::TpccScenario sc;
  sc.tpcc.txns_per_worker = 25;

  sim::Simulation sim(cfg);
  auto tpcc = std::make_shared<workloads::db::Tpcc>(sc.tpcc);
  tpcc->wal().set_crash_at(cfg.fault.wal_crash_at);
  tpcc->wal().set_fault_injector(sim.fault_injector());
  std::vector<workloads::db::Tpcc::WorkerResult> results(
      static_cast<std::size_t>(sc.workers));
  std::uint64_t replayed = 0;
  std::int64_t stock_ytd = 0;
  std::int64_t orderline_amount = 0;
  bool crashed = false;
  sim.spawn("db2.coord", [&, workers = sc.workers](sim::Proc& p) {
    tpcc->setup(p);
    p.sem_init(kStartSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_v(kStartSem);
    p.sem_init(kDoneSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_p(kDoneSem);
    crashed = tpcc->wal().crashed();
    if (crashed) replayed = tpcc->wal().recover(p);
    stock_ytd = tpcc->total_stock_ytd(p);
    orderline_amount = tpcc->total_orderline_amount(p);
  });
  for (int w = 0; w < sc.workers; ++w) {
    sim.spawn("db2.agent" + std::to_string(w), [&, w](sim::Proc& p) {
      p.sem_init(kStartSem, 0);
      p.sem_p(kStartSem);
      results[static_cast<std::size_t>(w)] = tpcc->worker(p, w);
      p.sem_init(kDoneSem, 0);
      p.sem_v(kDoneSem);
    });
  }
  sim.run();

  // Table-level consistency: stock and order-line updates precede the
  // commit record and are applied together, so the sums match even when
  // the WAL crashed mid-transaction.
  if (stock_ytd != orderline_amount)
    throw std::runtime_error(
        "B-tree/heap inconsistency: stock_ytd=" + std::to_string(stock_ytd) +
        " orderline_amount=" + std::to_string(orderline_amount));
  std::uint64_t committed = 0;
  for (const auto& r : results) committed += r.new_orders + r.payments;
  if (crashed) {
    // Recovery must replay exactly the committed prefix.
    if (replayed != committed)
      throw std::runtime_error("WAL replayed " + std::to_string(replayed) +
                               " records but workers committed " +
                               std::to_string(committed));
  } else if (cfg.fault.wal_crash_at == 0) {
    const std::uint64_t expected = static_cast<std::uint64_t>(
        sc.workers * sc.tpcc.txns_per_worker);
    if (committed != expected)
      throw std::runtime_error("tpcc committed " + std::to_string(committed) +
                               "/" + std::to_string(expected) + " txns");
  }
  workloads::ScenarioStats st;
  workloads::collect_stats(sim, st);
  st.work_units = committed;
  check_counters(st.snapshot);
  return st;
}

workloads::ScenarioStats trial_tpcd(sim::SimulationConfig cfg) {
  constexpr std::int64_t kStartSem = 9001;
  workloads::TpcdScenario sc;
  sc.workers = 2;
  sc.repeats = 2;
  sc.tpcd.lineitems = 1200;

  sim::Simulation sim(cfg);
  auto tpcd = std::make_shared<workloads::db::Tpcd>(sc.tpcd);
  using Answer = std::pair<workloads::db::Tpcd::Q1Result, std::int64_t>;
  std::vector<std::vector<Answer>> answers(
      static_cast<std::size_t>(sc.workers));
  sim.spawn("db2.coord", [&, workers = sc.workers](sim::Proc& p) {
    tpcd->setup(p);
    p.sem_init(kStartSem, 0);
    for (int i = 0; i < workers; ++i) p.sem_v(kStartSem);
  });
  for (int w = 0; w < sc.workers; ++w) {
    sim.spawn("db2.query" + std::to_string(w), [&, w](sim::Proc& p) {
      p.sem_init(kStartSem, 0);
      p.sem_p(kStartSem);
      auto& mine = answers[static_cast<std::size_t>(w)];
      for (int r = 0; r < sc.repeats; ++r)
        mine.emplace_back(tpcd->q1(p, w, sc.workers),
                          tpcd->q6(p, w, sc.workers));
    });
  }
  sim.run();

  // The queries scan an immutable LINEITEM table, so injected faults (disk
  // errors, timeouts, EINTR retries) must be invisible to the answers:
  // every repeat returns the same groups and the same revenue.
  for (const std::vector<Answer>& mine : answers) {
    for (std::size_t r = 1; r < mine.size(); ++r) {
      const auto& [q1a, q6a] = mine[0];
      const auto& [q1b, q6b] = mine[r];
      bool same = q6a == q6b;
      for (std::size_t g = 0; g < q1a.size() && same; ++g)
        same = q1a[g].count == q1b[g].count &&
               q1a[g].sum_qty == q1b[g].sum_qty &&
               q1a[g].sum_price == q1b[g].sum_price &&
               q1a[g].sum_disc_price == q1b[g].sum_disc_price;
      if (!same)
        throw std::runtime_error("tpcd repeat " + std::to_string(r) +
                                 " returned a different answer than repeat 0");
    }
  }
  workloads::ScenarioStats st;
  workloads::collect_stats(sim, st);
  st.work_units = static_cast<std::uint64_t>(sc.workers * sc.repeats);
  check_counters(st.snapshot);
  return st;
}

/// Run the trial once; with ckpt_at > 0 run it a second time restored from a
/// mid-run snapshot and require the restored run to (a) pass every invariant
/// the live run passed — the trial body throws otherwise — and (b) finish
/// with identical cycles, work units and counters. Trials that end before
/// the snapshot cycle simply skip the checkpoint leg.
void run_trial(const sim::SimulationConfig& base, Cycles ckpt_at,
               const std::function<workloads::ScenarioStats(
                   sim::SimulationConfig)>& trial) {
  if (ckpt_at == 0) {
    (void)trial(base);
    return;
  }
  ckpt::CreateOptions opts;
  opts.at_cycles = {ckpt_at};
  opts.out = "fault_fuzz.ckpt";
  sim::SimulationConfig create_cfg = base;
  ckpt::CheckpointWriter writer(create_cfg, opts);
  create_cfg.ckpt = &writer;
  create_cfg.post_build = [&writer](sim::Simulation& s) { writer.bind(s); };
  const workloads::ScenarioStats created = trial(create_cfg);
  if (writer.written().empty()) return;  // run ended before the snapshot

  ckpt::CheckpointFile f = ckpt::read_file(writer.written().front());
  std::remove(writer.written().front().c_str());
  sim::SimulationConfig restore_cfg = ckpt::config_from(f);
  restore_cfg.core.backend_workers = base.core.backend_workers;
  ckpt::CheckpointRestorer restorer(std::move(f), 0);
  restore_cfg.ckpt = &restorer;
  restore_cfg.post_build = [&restorer](sim::Simulation& s) {
    restorer.bind(s);
  };
  const workloads::ScenarioStats restored = trial(restore_cfg);
  if (!restorer.installed())
    throw std::runtime_error("checkpoint restore never reached its install "
                             "point (snapshot cycle past end of run?)");
  if (restored.cycles != created.cycles)
    throw std::runtime_error(
        "restored run finished at cycle " + std::to_string(restored.cycles) +
        " but the uninterrupted run finished at " +
        std::to_string(created.cycles));
  if (restored.work_units != created.work_units)
    throw std::runtime_error(
        "restored run committed " + std::to_string(restored.work_units) +
        " work units vs " + std::to_string(created.work_units));
  const std::vector<std::string> diff =
      trace::golden_diff(created.snapshot, restored.snapshot);
  if (!diff.empty())
    throw std::runtime_error("restored counters diverge: " + diff.front() +
                             (diff.size() > 1
                                  ? " (+" + std::to_string(diff.size() - 1) +
                                        " more)"
                                  : ""));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(
        argc, argv,
        {{"workload", "tpcc"},
         {"trials", "25"},
         {"seed0", "1"},
         {"cpus", "2"},
         {"workers", "-1"},
         {"l1-filter", "-1"},
         {"model", "vary"},
         {"ckpt-at", "0"},
         {"verbose", "false"}},
        {{"workload", "sci | web | tpcc | tpcd"},
         {"trials", "number of seeded trials"},
         {"seed0", "seed of the first trial (trial t uses seed0 + t)"},
         {"cpus", "simulated processors"},
         {"workers", "backend dispatch lanes; -1 varies per trial over "
                     "{1,2,4} (output is worker-count invariant)"},
         {"l1-filter", "frontend L1 reference filter; -1 varies per trial "
                       "over {off,on}, 0/1 pins it"},
         {"model", "memory-system model: cache | numa; 'vary' draws one "
                   "per trial (both feed the sharded lane-B window path)"},
         {"ckpt-at", "snapshot each trial at this cycle, restore, and "
                     "re-check every invariant plus exact-counter "
                     "equivalence (0 = off)"},
         {"verbose", "print each trial's plan"}});
    if (flags.help_requested()) {
      std::fputs(flags.usage("fault_fuzz").c_str(), stdout);
      return 0;
    }
    const std::string workload = flags.get("workload");
    if (workload != "sci" && workload != "web" && workload != "tpcc" &&
        workload != "tpcd")
      throw util::ConfigError("unknown workload '" + workload + "'");
    const std::int64_t trials = flags.get_int("trials");
    const std::uint64_t seed0 = static_cast<std::uint64_t>(flags.get_int("seed0"));
    const bool verbose = flags.get_bool("verbose");

    for (std::int64_t t = 0; t < trials; ++t) {
      const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
      util::Rng r(seed);
      const fault::FaultPlan plan = random_plan(r, workload);
      sim::SimulationConfig cfg;
      cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
      cfg.fault = plan;
      // Half the trials run preemptively so the scheduler-jitter hook
      // actually perturbs slice grants (the default config never preempts).
      if (r.next_bool(0.5)) {
        cfg.core.preemptive = true;
        cfg.core.quantum = static_cast<Cycles>(r.next_in(20'000, 200'000));
      }
      // The sharded backend is bit-identical for any worker count, so the
      // fuzzer doubles as a determinism fuzz over W: draw it from the trial
      // seed unless pinned on the command line.
      const std::int64_t workers_flag = flags.get_int("workers");
      const int workers = workers_flag >= 0
                              ? static_cast<int>(workers_flag)
                              : static_cast<int>(1 << r.next_in(0, 2));
      cfg.core.backend_workers = workers;
      // The L1 reference filter must be invisible to every invariant the
      // fuzzer checks, so vary it per trial too unless pinned.
      const std::int64_t filter_flag = flags.get_int("l1-filter");
      const bool l1_filter =
          filter_flag >= 0 ? filter_flag != 0 : r.next_bool(0.5);
      cfg.core.l1_filter = l1_filter;
      // Both stateful machines run the sharded lane-B window path, so
      // varying the model per trial fuzzes it over two cache hierarchies.
      const std::string model_flag = flags.get("model");
      bool numa_model;
      if (model_flag == "vary") numa_model = r.next_bool(0.5);
      else if (model_flag == "cache") numa_model = false;
      else if (model_flag == "numa") numa_model = true;
      else
        throw util::ConfigError("unknown model '" + model_flag +
                                "' (want cache | numa | vary)");
      const char* model_name = numa_model ? "numa" : "cache";
      if (numa_model) {
        cfg.model = sim::BackendModel::kNuma;
        cfg.core.num_nodes = 2;
      }
      if (verbose)
        std::printf(
            "trial %lld (seed %llu, workers %d, l1-filter %d, model %s): %s\n",
            static_cast<long long>(t), static_cast<unsigned long long>(seed),
            workers, static_cast<int>(l1_filter), model_name,
            describe(plan).c_str());
      const Cycles ckpt_at =
          static_cast<Cycles>(flags.get_int("ckpt-at"));
      try {
        if (workload == "sci") run_trial(cfg, ckpt_at, trial_sci);
        else if (workload == "web") run_trial(cfg, ckpt_at, trial_web);
        else if (workload == "tpcd") run_trial(cfg, ckpt_at, trial_tpcd);
        else run_trial(cfg, ckpt_at, trial_tpcc);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "FAIL trial %lld (seed %llu): %s\n  plan: %s\n"
                     "  repro: fault_fuzz --workload=%s --seed0=%llu "
                     "--trials=1 --cpus=%lld --workers=%d --l1-filter=%d "
                     "--model=%s --ckpt-at=%llu\n",
                     static_cast<long long>(t),
                     static_cast<unsigned long long>(seed), e.what(),
                     describe(plan).c_str(), workload.c_str(),
                     static_cast<unsigned long long>(seed),
                     static_cast<long long>(flags.get_int("cpus")), workers,
                     static_cast<int>(l1_filter), model_name,
                     static_cast<unsigned long long>(ckpt_at));
        return 1;
      }
    }
    std::printf("fault_fuzz: %lld/%lld %s trials passed (seeds %llu..%llu)\n",
                static_cast<long long>(trials), static_cast<long long>(trials),
                workload.c_str(), static_cast<unsigned long long>(seed0),
                static_cast<unsigned long long>(
                    seed0 + static_cast<std::uint64_t>(trials) - 1));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fault_fuzz: %s\n", e.what());
    return 2;
  }
}
