// trace_record: run one of the canned workloads with the event-trace
// recorder attached, producing a trace file replayable by trace_replay.
//
//   trace_record --workload=sci --out=sci.trace [--stats-json=sci.json]
//                [--cpus=4] [--model=simple|flat|numa] [--nodes=2] ...
#include <cstdio>
#include <map>
#include <string>

#include "fault/fault_flags.h"
#include "trace/trace_recorder.h"
#include "util/flags.h"
#include "workloads/runner.h"

using namespace compass;

namespace {

sim::BackendModel parse_model(const std::string& name) {
  if (name == "flat") return sim::BackendModel::kFlat;
  if (name == "simple") return sim::BackendModel::kSimple;
  if (name == "numa") return sim::BackendModel::kNuma;
  throw util::ConfigError("unknown model '" + name +
                          "' (expected flat|simple|numa)");
}

void print_summary(const char* what, const workloads::ScenarioStats& st) {
  std::printf(
      "%s: %llu cycles, %llu mem refs, %llu syscalls, %llu interrupts, "
      "%llu work units\n",
      what, static_cast<unsigned long long>(st.cycles),
      static_cast<unsigned long long>(st.mem_refs),
      static_cast<unsigned long long>(st.syscalls),
      static_cast<unsigned long long>(st.interrupts),
      static_cast<unsigned long long>(st.work_units));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::map<std::string, std::string> defaults = {
        {"workload", "sci"},
        {"out", "compass.trace"},
        {"stats-json", ""},
        {"cpus", "4"},
        {"nodes", "1"},
        {"backend-workers", "1"},
        {"quantum", "0"},
        {"model", "simple"},
        {"l1-filter", "0"},
        {"n", "32"},
        {"nprocs", "2"},
        {"workers", "2"},
        {"repeats", "1"},
        {"use-mmap", "0"},
        {"requests", "20"},
        {"servers", "1"},
        {"seed", "99"}};
    std::map<std::string, std::string> help = {
        {"workload", "sci | web | tpcc | tpcd"},
        {"out", "trace file to write"},
        {"stats-json", "also dump the live run's stats as JSON"},
        {"cpus", "simulated processors"},
        {"nodes", "NUMA nodes"},
        {"backend-workers",
         "backend dispatch lanes (bit-identical output for any value; "
         "0 = auto)"},
        {"quantum", "preemption quantum in cycles (0 = cooperative)"},
        {"model", "memory-system model: flat | simple | numa"},
        {"l1-filter",
         "frontend L1 reference filter (1 = absorb proven hits locally)"},
        {"n", "sci: matrix dimension"},
        {"nprocs", "sci: worker processes"},
        {"workers", "tpcc/tpcd: worker processes"},
        {"repeats", "tpcd: query executions per worker"},
        {"use-mmap", "tpcd: run Q1 through mmap (single worker only)"},
        {"requests", "web: request count"},
        {"servers", "web: server processes"},
        {"seed", "web: request-trace seed"}};
    fault::add_fault_flags(defaults, help);
    util::Flags flags(argc, argv, std::move(defaults), std::move(help));
    if (flags.help_requested()) {
      std::fputs(flags.usage("trace_record").c_str(), stdout);
      return 0;
    }

    sim::SimulationConfig cfg;
    cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
    cfg.core.num_nodes = static_cast<int>(flags.get_int("nodes"));
    cfg.core.backend_workers = static_cast<int>(flags.get_int("backend-workers"));
    if (flags.get_int("quantum") > 0) {
      cfg.core.preemptive = true;
      cfg.core.quantum = static_cast<Cycles>(flags.get_int("quantum"));
    }
    cfg.model = parse_model(flags.get("model"));
    cfg.core.l1_filter = flags.get_int("l1-filter") != 0;
    cfg.fault = fault::fault_plan_from_flags(flags);

    const std::string out = flags.get("out");
    trace::TraceRecorder recorder(cfg, out);
    cfg.trace_sink = &recorder;

    const std::string workload = flags.get("workload");
    workloads::ScenarioStats st;
    if (workload == "sci") {
      workloads::SciScenario sc;
      sc.matmul.n = static_cast<int>(flags.get_int("n"));
      sc.matmul.nprocs = static_cast<int>(flags.get_int("nprocs"));
      st = workloads::run_sci(cfg, sc);
    } else if (workload == "web") {
      workloads::WebScenario sc;
      sc.requests = static_cast<std::uint64_t>(flags.get_int("requests"));
      sc.servers = static_cast<int>(flags.get_int("servers"));
      sc.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
      st = workloads::run_web(cfg, sc);
    } else if (workload == "tpcc") {
      workloads::TpccScenario sc;
      sc.workers = static_cast<int>(flags.get_int("workers"));
      st = workloads::run_tpcc(cfg, sc);
    } else if (workload == "tpcd") {
      workloads::TpcdScenario sc;
      sc.workers = static_cast<int>(flags.get_int("workers"));
      sc.repeats = static_cast<int>(flags.get_int("repeats"));
      sc.use_mmap = flags.get_int("use-mmap") != 0;
      st = workloads::run_tpcd(cfg, sc);
    } else {
      throw util::ConfigError("unknown workload '" + workload + "'");
    }
    recorder.finalize();

    print_summary(workload.c_str(), st);
    std::printf("wrote %s: %llu records, %llu events\n", out.c_str(),
                static_cast<unsigned long long>(recorder.records_written()),
                static_cast<unsigned long long>(recorder.events_written()));
    const std::string json_path = flags.get("stats-json");
    if (!json_path.empty()) {
      stats::write_json_file(json_path, st.snapshot);
      std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_record: %s\n", e.what());
    return 2;
  }
}
