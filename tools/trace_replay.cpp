// trace_replay: re-drive the backend from a recorded trace, optionally
// against a modified machine configuration, and report standard stats.
//
//   trace_replay sci.trace                          # recorded config
//   trace_replay sci.trace --stats-json=replay.json
//   trace_replay sci.trace --golden-json=live.json  # exit 1 on divergence
//   trace_replay sci.trace --model=numa --nodes=2   # what-if sweep
#include <cstdio>
#include <string>

#include "trace/config_codec.h"
#include "trace/golden.h"
#include "trace/trace_reader.h"
#include "trace/trace_replayer.h"
#include "util/flags.h"

using namespace compass;

int main(int argc, char** argv) {
  try {
    util::Flags flags(
        argc, argv,
        {{"stats-json", ""},
         {"golden-json", ""},
         {"model", ""},
         {"nodes", "0"},
         {"flat-latency", "0"},
         {"mem-latency", "0"},
         {"l1-size", "0"},
         {"l1-filter", "-1"},
         {"workers", "1"}},
        {{"stats-json", "dump replay stats as JSON"},
         {"golden-json", "compare against a live run's stats JSON; exit 1 "
                         "if cycles or any counter differ"},
         {"model", "override memory model: flat | simple | numa"},
         {"nodes", "override NUMA node count (0 = recorded)"},
         {"flat-latency", "override flat-model latency (0 = recorded)"},
         {"mem-latency", "override simple-model memory latency (0 = recorded)"},
         {"l1-size", "override L1 size in bytes, simple+numa (0 = recorded)"},
         {"l1-filter", "override frontend L1 filter knob: 0 | 1 "
                       "(-1 = recorded; replay state is identical either "
                       "way — absorbed hits ride in the recorded batches)"},
         {"workers", "backend dispatch lanes for the replay (bit-identical "
                     "result for any value; 0 = auto)"}});
    if (flags.help_requested() || flags.positional().size() != 1) {
      std::fputs(flags.usage("trace_replay <trace-file>").c_str(), stdout);
      return flags.help_requested() ? 0 : 2;
    }

    const trace::TraceData data =
        trace::TraceReader::read_file(flags.positional()[0]);
    sim::SimulationConfig cfg = trace::decode_config(data.config);

    const std::string model = flags.get("model");
    if (model == "flat") cfg.model = sim::BackendModel::kFlat;
    else if (model == "simple") cfg.model = sim::BackendModel::kSimple;
    else if (model == "numa") cfg.model = sim::BackendModel::kNuma;
    else if (!model.empty())
      throw util::ConfigError("unknown model '" + model + "'");
    if (flags.get_int("nodes") > 0)
      cfg.core.num_nodes = static_cast<int>(flags.get_int("nodes"));
    // Host execution strategy, never part of the recorded fingerprint.
    cfg.core.backend_workers = static_cast<int>(flags.get_int("workers"));
    if (flags.get_int("flat-latency") > 0)
      cfg.flat_latency = flags.get_int("flat-latency");
    if (flags.get_int("mem-latency") > 0)
      cfg.simple.mem_latency = flags.get_int("mem-latency");
    if (flags.get_int("l1-filter") >= 0)
      cfg.core.l1_filter = flags.get_int("l1-filter") != 0;
    if (flags.get_int("l1-size") > 0) {
      cfg.simple.l1.size_bytes =
          static_cast<std::uint32_t>(flags.get_int("l1-size"));
      cfg.numa.l1.size_bytes =
          static_cast<std::uint32_t>(flags.get_int("l1-size"));
    }

    trace::TraceReplayer replayer(data, cfg);
    replayer.run();

    const stats::StatsSnapshot snap = stats::make_snapshot(
        replayer.now(), replayer.stats(), replayer.breakdown());
    const stats::TimeShares shares = replayer.breakdown().shares();
    std::printf(
        "replayed %llu events: %llu cycles (user %.1f%%, OS %.1f%%), "
        "%llu mem refs\n",
        static_cast<unsigned long long>(data.total_events),
        static_cast<unsigned long long>(snap.cycles), shares.user,
        shares.os_total,
        static_cast<unsigned long long>(
            replayer.stats().counter_value("backend.mem_refs")));

    const std::string json_path = flags.get("stats-json");
    if (!json_path.empty()) {
      stats::write_json_file(json_path, snap);
      std::printf("wrote %s\n", json_path.c_str());
    }

    const std::string golden_path = flags.get("golden-json");
    if (!golden_path.empty()) {
      const stats::StatsSnapshot live = stats::read_json_file(golden_path);
      const std::vector<std::string> diffs = trace::golden_diff(live, snap);
      if (!diffs.empty()) {
        std::fprintf(stderr, "GOLDEN MISMATCH (%zu diffs):\n", diffs.size());
        for (const std::string& d : diffs)
          std::fprintf(stderr, "  %s\n", d.c_str());
        return 1;
      }
      std::printf("golden match: cycles and all compared counters identical\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_replay: %s\n", e.what());
    return 2;
  }
}
