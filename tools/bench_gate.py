#!/usr/bin/env python3
"""Benchmark regression gate.

Compares google-benchmark JSON results against a committed baseline
(bench/baseline.json) and fails when any benchmark regressed beyond the
threshold after normalizing out overall host speed.

The CI host and the host that recorded the baseline differ in clock speed,
cache sizes and load, so absolute times are meaningless. Instead the gate
computes, per benchmark, the ratio current/baseline, takes the median ratio
across ALL benchmarks as the host-speed factor, and flags a benchmark only
when its own ratio exceeds `median * (1 + threshold)`. A uniform slowdown
(slower CI machine) moves every ratio equally and trips nothing; a single
benchmark regressing against its peers stands out regardless of host.

Usage:
  bench_gate.py update  --baseline bench/baseline.json result1.json ...
  bench_gate.py check   --baseline bench/baseline.json result1.json ...
                        [--threshold 0.20]

`update` rewrites the baseline from the given result files; `check` exits 1
on regression. Both prefer `_median` aggregate entries (run the benches
with --benchmark_repetitions=N) and fall back to raw entries otherwise.
A run missing a baseline entry is reported but never fails the gate (new
benchmarks land before their baseline does); a baseline entry missing from
the results fails it (a silently dropped benchmark is itself a regression).
"""

import argparse
import json
import statistics
import sys


def load_times(paths):
    """name -> real_time in ns, preferring _median aggregates."""
    medians = {}
    raw = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            name = b["name"]
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
            t = float(b["real_time"]) * scale
            if b.get("run_type") == "aggregate":
                if b.get("aggregate_name") == "median":
                    medians[name.removesuffix("_median")] = t
            else:
                raw[name] = t
    out = dict(raw)
    out.update(medians)  # aggregates win over their own raw repetitions
    return out


def cmd_update(args):
    times = load_times(args.results)
    if not times:
        print("bench_gate: no benchmark entries found", file=sys.stderr)
        return 1
    baseline = {
        "_comment": "Median real_time per benchmark in ns. Regenerate with: "
                    "python3 tools/bench_gate.py update --baseline "
                    "bench/baseline.json <result.json ...>",
        "benchmarks": {name: round(t, 1) for name, t in sorted(times.items())},
    }
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"bench_gate: wrote {len(times)} baseline entries to {args.baseline}")
    return 0


def cmd_check(args):
    with open(args.baseline) as f:
        base = json.load(f)["benchmarks"]
    cur = load_times(args.results)

    new = sorted(set(cur) - set(base))
    for name in new:
        print(f"bench_gate: NOTE no baseline for {name} (skipped)")

    missing = sorted(set(base) - set(cur))
    ratios = {n: cur[n] / base[n] for n in base if n in cur and base[n] > 0}
    if not ratios:
        print("bench_gate: no comparable benchmarks", file=sys.stderr)
        return 1

    norm = statistics.median(ratios.values())
    limit = norm * (1.0 + args.threshold)
    print(f"bench_gate: {len(ratios)} benchmarks, host-speed factor "
          f"{norm:.3f}, per-benchmark limit {limit:.3f}x baseline")

    failures = []
    for name, r in sorted(ratios.items(), key=lambda kv: -kv[1]):
        verdict = "FAIL" if r > limit else "ok"
        print(f"  {verdict:4} {r / norm:6.3f}x normalized  ({r:6.3f}x raw)  {name}")
        if r > limit:
            failures.append(name)

    for name in missing:
        print(f"  FAIL missing from results: {name}")
        failures.append(name)

    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0%} of the normalized median.", file=sys.stderr)
        print("bench_gate: reproduce locally with:", file=sys.stderr)
        for res in args.results:
            bench = res.rsplit("/", 1)[-1].removesuffix(".json")
            print(f"  ./bench/{bench} --benchmark_repetitions=3 "
                  f"--benchmark_format=json --benchmark_out={bench}.json "
                  f"--benchmark_out_format=json", file=sys.stderr)
        print(f"  python3 tools/bench_gate.py check --baseline "
              f"{args.baseline} " + " ".join(args.results), file=sys.stderr)
        print("bench_gate: if the slowdown is intended, refresh the baseline "
              "(tools/bench_gate.py update) in the same PR, or apply the "
              "'bench-regression-ok' label to skip this gate.", file=sys.stderr)
        return 1
    print("bench_gate: all benchmarks within threshold")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)
    up = sub.add_parser("update", help="rewrite the baseline from results")
    up.add_argument("--baseline", required=True)
    up.add_argument("results", nargs="+")
    ck = sub.add_parser("check", help="compare results against the baseline")
    ck.add_argument("--baseline", required=True)
    ck.add_argument("--threshold", type=float, default=0.20,
                    help="allowed regression over the normalized median "
                         "(default 0.20 = 20%%)")
    ck.add_argument("results", nargs="+")
    args = p.parse_args()
    return cmd_update(args) if args.cmd == "update" else cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
