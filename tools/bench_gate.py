#!/usr/bin/env python3
"""Benchmark regression gate.

Compares google-benchmark JSON results against a committed baseline
(bench/baseline.json) and fails when any benchmark regressed beyond the
threshold after normalizing out overall host speed.

The CI host and the host that recorded the baseline differ in clock speed,
cache sizes and load, so absolute times are meaningless. Instead the gate
computes, per benchmark, the ratio current/baseline, takes the median ratio
across ALL benchmarks as the host-speed factor, and flags a benchmark only
when its own ratio exceeds `median * (1 + threshold)`. A uniform slowdown
(slower CI machine) moves every ratio equally and trips nothing; a single
benchmark regressing against its peers stands out regardless of host.

Usage:
  bench_gate.py update  --baseline bench/baseline.json result1.json ...
  bench_gate.py check   --baseline bench/baseline.json result1.json ...
                        [--threshold 0.20]

`update` rewrites the baseline from the given result files; `check` exits 1
on regression. Both prefer `_median` aggregate entries (run the benches
with --benchmark_repetitions=N) and fall back to raw entries otherwise.
Set mismatches never fail the gate, in either direction: a result with no
baseline entry (new benchmarks land before their baseline does) and a
baseline entry missing from the results (a bench binary was renamed,
dropped from the smoke run, or skipped on this host) are each reported
with a clear WARNING and skipped. Only a measured regression fails.

Entries whose name ends in "/ratio" are host-invariant dimensionless
ratios (e.g. bench_ckpt's restore-vs-live time ratio): they are excluded
from the host-speed median and compared raw against
baseline * (1 + threshold), since host speed cancels out of a ratio.

  bench_gate.py selftest

runs the gate against synthetic data and verifies both mismatch
directions warn-and-pass while a genuine regression still fails.
"""

import argparse
import json
import statistics
import sys


def load_times(paths):
    """name -> real_time in ns, preferring _median aggregates."""
    medians = {}
    raw = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for b in data.get("benchmarks", []):
            name = b["name"]
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
            t = float(b["real_time"]) * scale
            if b.get("run_type") == "aggregate":
                if b.get("aggregate_name") == "median":
                    medians[name.removesuffix("_median")] = t
            else:
                raw[name] = t
    out = dict(raw)
    out.update(medians)  # aggregates win over their own raw repetitions
    return out


def cmd_update(args):
    times = load_times(args.results)
    if not times:
        print("bench_gate: no benchmark entries found", file=sys.stderr)
        return 1
    baseline = {
        "_comment": "Median real_time per benchmark in ns. Regenerate with: "
                    "python3 tools/bench_gate.py update --baseline "
                    "bench/baseline.json <result.json ...>",
        "benchmarks": {name: round(t, 1) for name, t in sorted(times.items())},
    }
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"bench_gate: wrote {len(times)} baseline entries to {args.baseline}")
    return 0


def cmd_check(args):
    with open(args.baseline) as f:
        base = json.load(f)["benchmarks"]
    cur = load_times(args.results)

    new = sorted(set(cur) - set(base))
    for name in new:
        print(f"bench_gate: WARNING no baseline entry for {name} — skipped "
              "(baseline it with 'bench_gate.py update' once it stabilizes)")

    missing = sorted(set(base) - set(cur))
    for name in missing:
        print(f"bench_gate: WARNING baseline entry {name} missing from "
              "results — skipped (renamed/dropped bench? refresh the "
              "baseline with 'bench_gate.py update')")

    ratios = {n: cur[n] / base[n] for n in base if n in cur and base[n] > 0}
    if not ratios:
        print("bench_gate: no comparable benchmarks", file=sys.stderr)
        return 1

    timed = [r for n, r in ratios.items() if not n.endswith("/ratio")]
    norm = statistics.median(timed) if timed else 1.0
    limit = norm * (1.0 + args.threshold)
    print(f"bench_gate: {len(ratios)} benchmarks, host-speed factor "
          f"{norm:.3f}, per-benchmark limit {limit:.3f}x baseline "
          f"(host-invariant /ratio entries: {1.0 + args.threshold:.3f}x)")

    failures = []
    for name, r in sorted(ratios.items(), key=lambda kv: -kv[1]):
        n = 1.0 if name.endswith("/ratio") else norm
        verdict = "FAIL" if r > n * (1.0 + args.threshold) else "ok"
        print(f"  {verdict:4} {r / n:6.3f}x normalized  ({r:6.3f}x raw)  {name}")
        if verdict == "FAIL":
            failures.append(name)

    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s) beyond "
              f"{args.threshold:.0%} of the normalized median.", file=sys.stderr)
        print("bench_gate: reproduce locally with:", file=sys.stderr)
        for res in args.results:
            bench = res.rsplit("/", 1)[-1].removesuffix(".json")
            print(f"  ./bench/{bench} --benchmark_repetitions=3 "
                  f"--benchmark_format=json --benchmark_out={bench}.json "
                  f"--benchmark_out_format=json", file=sys.stderr)
        print(f"  python3 tools/bench_gate.py check --baseline "
              f"{args.baseline} " + " ".join(args.results), file=sys.stderr)
        print("bench_gate: if the slowdown is intended, refresh the baseline "
              "(tools/bench_gate.py update) in the same PR, or apply the "
              "'bench-regression-ok' label to skip this gate.", file=sys.stderr)
        return 1
    print("bench_gate: all benchmarks within threshold")
    return 0


def cmd_selftest(_args):
    """Exercise the gate against synthetic data: both set-mismatch
    directions must warn and pass, and a real regression must still fail."""
    import contextlib
    import io
    import os
    import tempfile
    import types

    def run_check(baseline, results, threshold=0.20):
        with tempfile.TemporaryDirectory() as d:
            bpath = os.path.join(d, "baseline.json")
            rpath = os.path.join(d, "result.json")
            with open(bpath, "w") as f:
                json.dump({"benchmarks": baseline}, f)
            with open(rpath, "w") as f:
                json.dump({"benchmarks": [
                    {"name": n, "real_time": t, "time_unit": "ns"}
                    for n, t in results.items()]}, f)
            args = types.SimpleNamespace(baseline=bpath, results=[rpath],
                                         threshold=threshold)
            out = io.StringIO()
            with contextlib.redirect_stdout(out), \
                 contextlib.redirect_stderr(out):
                rc = cmd_check(args)
            return rc, out.getvalue()

    checks = []

    # Baseline entry absent from the results: warn + pass.
    rc, out = run_check({"a": 100.0, "b": 100.0, "dropped": 100.0},
                        {"a": 100.0, "b": 100.0})
    checks.append(("missing-from-results warns",
                   "WARNING baseline entry dropped missing" in out))
    checks.append(("missing-from-results passes", rc == 0))

    # Result with no baseline entry: warn + pass.
    rc, out = run_check({"a": 100.0, "b": 100.0},
                        {"a": 100.0, "b": 100.0, "brand_new": 100.0})
    checks.append(("new-in-results warns",
                   "WARNING no baseline entry for brand_new" in out))
    checks.append(("new-in-results passes", rc == 0))

    # Both directions at once, on a uniformly 3x-slower host: still passes.
    rc, out = run_check({"a": 100.0, "b": 100.0, "dropped": 100.0},
                        {"a": 300.0, "b": 300.0, "brand_new": 300.0})
    checks.append(("both-directions passes", rc == 0))

    # A genuine single-benchmark regression must still fail.
    rc, out = run_check({"a": 100.0, "b": 100.0, "c": 100.0},
                        {"a": 100.0, "b": 100.0, "c": 200.0})
    checks.append(("regression still fails", rc == 1 and "FAIL" in out))

    # A host-invariant /ratio entry must not trip on a uniformly faster
    # host (the times halve, the ratio does not)...
    rc, out = run_check({"a": 100.0, "b": 100.0, "x/ratio": 1.0},
                        {"a": 50.0, "b": 50.0, "x/ratio": 1.0})
    checks.append(("ratio ignores host speed", rc == 0))

    # ...but a regressed ratio must fail even when every timing is flat.
    rc, out = run_check({"a": 100.0, "b": 100.0, "x/ratio": 1.0},
                        {"a": 100.0, "b": 100.0, "x/ratio": 1.5})
    checks.append(("ratio regression fails", rc == 1 and "x/ratio" in out))

    ok = True
    for name, passed in checks:
        print(f"  {'ok' if passed else 'FAIL':4} {name}")
        ok = ok and passed
    if not ok:
        print("bench_gate: selftest FAILED", file=sys.stderr)
        return 1
    print(f"bench_gate: selftest passed ({len(checks)} checks)")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)
    up = sub.add_parser("update", help="rewrite the baseline from results")
    up.add_argument("--baseline", required=True)
    up.add_argument("results", nargs="+")
    ck = sub.add_parser("check", help="compare results against the baseline")
    ck.add_argument("--baseline", required=True)
    ck.add_argument("--threshold", type=float, default=0.20,
                    help="allowed regression over the normalized median "
                         "(default 0.20 = 20%%)")
    ck.add_argument("results", nargs="+")
    sub.add_parser("selftest",
                   help="verify mismatch handling and regression detection "
                        "against synthetic data")
    args = p.parse_args()
    if args.cmd == "update":
        return cmd_update(args)
    if args.cmd == "selftest":
        return cmd_selftest(args)
    return cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
