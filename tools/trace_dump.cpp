// trace_dump: human-readable inspection of a recorded event trace.
//
//   trace_dump sci.trace               # header, config, per-kind histogram
//   trace_dump sci.trace --events --limit=50
#include <cstdio>
#include <string>

#include "trace/config_codec.h"
#include "trace/trace_reader.h"
#include "util/flags.h"

using namespace compass;

namespace {

const char* kind_name(core::TraceSink::ProcKind k) {
  switch (k) {
    case core::TraceSink::ProcKind::kProcess: return "process";
    case core::TraceSink::ProcKind::kBottomHalf: return "bottom-half";
    case core::TraceSink::ProcKind::kDaemon: return "daemon";
  }
  return "?";
}

void dump_events(const trace::TraceData& data, std::uint64_t limit) {
  std::uint64_t printed = 0;
  for (std::size_t p = 0; p < data.streams.size(); ++p) {
    const auto& stream = data.streams[p];
    if (stream.empty()) continue;
    std::printf("\n-- proc %zu (%s) --\n", p, data.procs[p].name.c_str());
    for (const trace::TraceData::Op& op : stream) {
      if (printed >= limit) {
        std::printf("  ... (limit reached)\n");
        return;
      }
      switch (op.kind) {
        case trace::TraceData::Op::Kind::kIrqPop:
          std::printf("  irq-pop cpu=%d\n", op.cpu);
          break;
        case trace::TraceData::Op::Kind::kTxFrame:
          std::printf("  tx-frame %llu bytes\n",
                      static_cast<unsigned long long>(op.bytes));
          break;
        case trace::TraceData::Op::Kind::kBatch:
          std::printf("  batch (%zu events)\n", op.events.size());
          for (const core::Event& ev : op.events) {
            if (ev.kind == core::EventKind::kMemRef)
              std::printf("    +%-8lld MemRef %s addr=0x%llx size=%u [%s]\n",
                          static_cast<long long>(ev.time),
                          ev.ref_type == RefType::kLoad    ? "load"
                          : ev.ref_type == RefType::kStore ? "store"
                                                           : "sync",
                          static_cast<unsigned long long>(ev.addr), ev.size,
                          to_string(ev.mode).data());
            else
              std::printf("    +%-8lld %s args={%llu,%llu,%llu,%llu} [%s]\n",
                          static_cast<long long>(ev.time),
                          to_string(ev.kind).data(),
                          static_cast<unsigned long long>(ev.arg[0]),
                          static_cast<unsigned long long>(ev.arg[1]),
                          static_cast<unsigned long long>(ev.arg[2]),
                          static_cast<unsigned long long>(ev.arg[3]),
                          to_string(ev.mode).data());
          }
          break;
      }
      ++printed;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv, {{"events", "false"}, {"limit", "200"}},
                      {{"events", "print each record"},
                       {"limit", "max records printed with --events"}});
    if (flags.help_requested() || flags.positional().size() != 1) {
      std::fputs(flags.usage("trace_dump <trace-file>").c_str(), stdout);
      return flags.help_requested() ? 0 : 2;
    }

    const trace::TraceData data =
        trace::TraceReader::read_file(flags.positional()[0]);

    std::printf("trace: %s\n", flags.positional()[0].c_str());
    std::printf("config fingerprint: %016llx (%zu keys)\n",
                static_cast<unsigned long long>(data.config_hash),
                data.config.size());
    const sim::SimulationConfig cfg = trace::decode_config(data.config);
    std::printf("recorded machine: %d cpus, %d nodes, model=%s\n",
                cfg.core.num_cpus, cfg.core.num_nodes,
                cfg.model == sim::BackendModel::kFlat     ? "flat"
                : cfg.model == sim::BackendModel::kSimple ? "simple"
                                                          : "numa");

    std::printf("\nprocesses (%zu):\n", data.procs.size());
    for (std::size_t p = 0; p < data.procs.size(); ++p) {
      std::size_t batches = 0;
      std::size_t events = 0;
      for (const auto& op : data.streams[p])
        if (op.kind == trace::TraceData::Op::Kind::kBatch) {
          ++batches;
          events += op.events.size();
        }
      std::printf("  %3zu  %-16s %-11s %7zu batches %9zu events\n", p,
                  data.procs[p].name.c_str(), kind_name(data.procs[p].kind),
                  batches, events);
    }

    // Per-EventKind histogram over every recorded batch.
    std::uint64_t by_kind[16] = {};
    for (const auto& stream : data.streams)
      for (const auto& op : stream)
        if (op.kind == trace::TraceData::Op::Kind::kBatch)
          for (const core::Event& ev : op.events)
            ++by_kind[static_cast<std::size_t>(ev.kind) & 0xF];
    std::printf("\nevent kinds:\n");
    for (std::size_t k = 0; k <= static_cast<std::size_t>(core::EventKind::kExit); ++k)
      if (by_kind[k] != 0)
        std::printf("  %-12s %10llu\n",
                    to_string(static_cast<core::EventKind>(k)).data(),
                    static_cast<unsigned long long>(by_kind[k]));

    std::printf("\nchannel seeds: %zu, rx stimuli: %zu\n",
                data.channel_seeds.size(), data.rx_stimuli.size());
    std::printf("totals: %llu records, %llu events\n",
                static_cast<unsigned long long>(data.total_records),
                static_cast<unsigned long long>(data.total_events));

    if (flags.get_bool("events"))
      dump_events(data, static_cast<std::uint64_t>(flags.get_int("limit")));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_dump: %s\n", e.what());
    return 2;
  }
}
