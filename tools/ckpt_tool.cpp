// ckpt_tool: create, inspect and restore simulation checkpoints, plus a
// region-sampling mode that fans restored regions across host processes.
//
//   ckpt_tool create  --workload=tpcc --out=run.ckpt --at=2000000
//   ckpt_tool create  --workload=tpcc --out=run.ckpt --every=1000000
//   ckpt_tool info    run.ckpt
//   ckpt_tool restore run.ckpt [--run-for=500000] [--workers=4]
//                     [--trace-out=r.trace] [--stats-json=r.json]
//                     [--golden-json=ref.json]
//   ckpt_tool sample  --workload=tpcc --out=run.ckpt --every=1000000
//                     [--jobs=4]
//   ckpt_tool sample  --workload=tpcc --out=run.ckpt --regions=8 [--jobs=4]
//
// `sample` runs the workload once taking a checkpoint every K cycles, then
// forks one host process per checkpoint, each restoring its region and
// simulating K cycles — the warmup skip-ahead + parallel-region workflow.
// With --regions=N the snapshot cycles come from a first profiling pass
// instead of even spacing: the run's data-dispatch histogram is split at
// event-count quantile boundaries, so each forked region replays a
// near-equal share of the events even when the run is front-loaded.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/warp_shard.h"
#include "fault/fault_flags.h"
#include "trace/config_codec.h"
#include "trace/golden.h"
#include "trace/trace_recorder.h"
#include "util/flags.h"
#include "workloads/runner.h"

using namespace compass;

namespace {

sim::BackendModel parse_model(const std::string& name) {
  if (name == "flat") return sim::BackendModel::kFlat;
  if (name == "simple") return sim::BackendModel::kSimple;
  if (name == "numa") return sim::BackendModel::kNuma;
  throw util::ConfigError("unknown model '" + name +
                          "' (expected flat|simple|numa)");
}

std::vector<Cycles> parse_cycle_list(const std::string& csv) {
  std::vector<Cycles> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!item.empty()) out.push_back(std::stoull(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

sim::SimulationConfig config_from_flags(const util::Flags& flags) {
  sim::SimulationConfig cfg;
  cfg.core.num_cpus = static_cast<int>(flags.get_int("cpus"));
  cfg.core.num_nodes = static_cast<int>(flags.get_int("nodes"));
  cfg.core.backend_workers =
      static_cast<int>(flags.get_int("backend-workers"));
  if (flags.get_int("quantum") > 0) {
    cfg.core.preemptive = true;
    cfg.core.quantum = static_cast<Cycles>(flags.get_int("quantum"));
  }
  cfg.model = parse_model(flags.get("model"));
  cfg.core.l1_filter = flags.get_int("l1-filter") != 0;
  cfg.core.batch_size = static_cast<int>(flags.get_int("batch-size"));
  cfg.fault = fault::fault_plan_from_flags(flags);
  return cfg;
}

/// Workload selection in run_scenario form, plus its meta-block image.
workloads::ScenarioParams scenario_from_flags(const util::Flags& flags) {
  workloads::ScenarioParams params;
  params.workload = flags.get("workload");
  if (params.workload == "sci") {
    params.kv["n"] = flags.get("n");
    params.kv["nprocs"] = flags.get("nprocs");
  } else if (params.workload == "web") {
    params.kv["requests"] = flags.get("requests");
    params.kv["servers"] = flags.get("servers");
    params.kv["seed"] = flags.get("seed");
  } else if (params.workload == "tpcc") {
    params.kv["workers"] = flags.get("workers");
    params.kv["txns"] = flags.get("txns");
    params.kv["items"] = flags.get("items");
    params.kv["warehouses"] = flags.get("warehouses");
  } else if (params.workload == "tpcd") {
    params.kv["workers"] = flags.get("workers");
    params.kv["repeats"] = flags.get("repeats");
    params.kv["use_mmap"] = flags.get("use-mmap");
  } else {
    throw util::ConfigError("unknown workload '" + params.workload + "'");
  }
  return params;
}

workloads::ScenarioParams scenario_from_meta(const ckpt::CheckpointFile& f) {
  workloads::ScenarioParams params;
  params.kv = f.meta;
  const auto it = params.kv.find("workload");
  if (it == params.kv.end())
    throw util::StateError("checkpoint meta block has no 'workload' key");
  params.workload = it->second;
  params.kv.erase(it);
  return params;
}

void print_summary(const char* what, const workloads::ScenarioStats& st) {
  std::printf("%s: %llu cycles, %llu mem refs, %llu syscalls, %llu work units\n",
              what, static_cast<unsigned long long>(st.cycles),
              static_cast<unsigned long long>(st.mem_refs),
              static_cast<unsigned long long>(st.syscalls),
              static_cast<unsigned long long>(st.work_units));
}

int cmd_create(const util::Flags& flags) {
  sim::SimulationConfig cfg = config_from_flags(flags);
  const workloads::ScenarioParams params = scenario_from_flags(flags);

  ckpt::CreateOptions opts;
  opts.out = flags.get("out");
  opts.at_cycles = parse_cycle_list(flags.get("at"));
  opts.every = static_cast<Cycles>(flags.get_int("every"));
  opts.meta = params.kv;
  opts.meta["workload"] = params.workload;

  ckpt::CheckpointWriter writer(cfg, opts);
  cfg.ckpt = &writer;
  cfg.post_build = [&writer](sim::Simulation& s) { writer.bind(s); };

  std::unique_ptr<trace::TraceRecorder> recorder;
  const std::string trace_out = flags.get("trace-out");
  if (!trace_out.empty()) {
    recorder = std::make_unique<trace::TraceRecorder>(cfg, trace_out);
    cfg.trace_sink = recorder.get();
  }

  const workloads::ScenarioStats st = workloads::run_scenario(cfg, params);
  if (recorder != nullptr) recorder->finalize();
  print_summary(params.workload.c_str(), st);
  for (const std::string& path : writer.written())
    std::printf("wrote %s\n", path.c_str());
  if (writer.written().empty())
    std::fprintf(stderr,
                 "warning: run ended at cycle %llu before any target\n",
                 static_cast<unsigned long long>(st.cycles));
  const std::string json_path = flags.get("stats-json");
  if (!json_path.empty()) {
    stats::write_json_file(json_path, st.snapshot);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return writer.written().empty() ? 1 : 0;
}

int cmd_info(const std::string& path) {
  const ckpt::CheckpointFile f = ckpt::read_file(path);
  std::printf("%s:\n", path.c_str());
  std::printf("  target cycle     %llu\n",
              static_cast<unsigned long long>(f.target));
  std::printf("  quiescent cycle  %llu\n",
              static_cast<unsigned long long>(f.quiescent));
  std::printf("  processes        %llu\n",
              static_cast<unsigned long long>(f.nprocs));
  std::printf("  config pairs     %zu\n", f.config.size());
  for (const auto& [key, value] : f.meta)
    std::printf("  meta             %s=%s\n", key.c_str(), value.c_str());
  for (const auto& [id, payload] : f.sections)
    std::printf("  section %-10s %zu bytes\n",
                ckpt::to_string(static_cast<ckpt::SectionId>(id)),
                payload.size());
  if (f.has_section(ckpt::SectionId::kWarpSpine)) {
    const std::vector<std::uint8_t>& bytes =
        f.section(ckpt::SectionId::kWarpSpine);
    std::printf("  spine records    %zu\n",
                ckpt::decode_spine({bytes.data(), bytes.size()}).size());
  }
  if (f.has_section(ckpt::SectionId::kWarpShards)) {
    std::uint64_t l1 = 0;
    trace::config_lookup(f.config, trace::ConfigKey::kL1Filter, l1);
    const std::vector<std::uint8_t>& bytes =
        f.section(ckpt::SectionId::kWarpShards);
    for (const ckpt::WarpShard& shard :
         ckpt::decode_shards({bytes.data(), bytes.size()}, l1 != 0)) {
      std::size_t data = 0;
      std::size_t posts = 0;
      std::size_t pops = 0;
      for (const ckpt::ShardRecord& rec : shard.records) {
        if (rec.tag == ckpt::kShardData) ++data;
        else if (rec.tag == ckpt::kShardPost) ++posts;
        else ++pops;
      }
      std::printf("  shard proc %-5d %zu records (%zu data, %zu posts, "
                  "%zu irq pops)\n",
                  shard.proc, shard.records.size(), data, posts, pops);
    }
  }
  return 0;
}

ckpt::WarpMode parse_warp_mode(const std::string& name) {
  if (name == "auto") return ckpt::WarpMode::kAuto;
  if (name == "self") return ckpt::WarpMode::kSelfServe;
  if (name == "port") return ckpt::WarpMode::kPortPaced;
  throw util::ConfigError("unknown warp mode '" + name +
                          "' (expected auto|self|port)");
}

int cmd_restore(const util::Flags& flags, const std::string& path) {
  ckpt::CheckpointFile f = ckpt::read_file(path);
  const std::string workers = flags.get("restore-workers");
  sim::SimulationConfig cfg = ckpt::config_from(
      f, workers.empty() ? -1 : static_cast<int>(std::stoll(workers)));
  const workloads::ScenarioParams params = scenario_from_meta(f);
  const auto run_for = static_cast<Cycles>(flags.get_int("run-for"));

  ckpt::CheckpointRestorer restorer(std::move(f), run_for,
                                    parse_warp_mode(flags.get("warp")));
  cfg.ckpt = &restorer;
  cfg.post_build = [&restorer](sim::Simulation& s) { restorer.bind(s); };

  std::unique_ptr<trace::TraceRecorder> recorder;
  const std::string trace_out = flags.get("trace-out");
  if (!trace_out.empty()) {
    recorder = std::make_unique<trace::TraceRecorder>(cfg, trace_out);
    cfg.trace_sink = recorder.get();
  }

  const workloads::ScenarioStats st = workloads::run_scenario(cfg, params);
  if (recorder != nullptr) recorder->finalize();
  if (!restorer.installed()) {
    std::fprintf(stderr, "restore failed: run ended before the warp reached "
                         "the snapshot cycle\n");
    return 1;
  }
  std::printf("restored at cycle %llu (%s warp)\n",
              static_cast<unsigned long long>(restorer.installed_at()),
              restorer.self_serve_active() ? "self-serve" : "port-paced");
  print_summary(params.workload.c_str(), st);
  const std::string json_path = flags.get("stats-json");
  if (!json_path.empty()) {
    stats::write_json_file(json_path, st.snapshot);
    std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string golden = flags.get("golden-json");
  if (!golden.empty()) {
    const stats::StatsSnapshot ref = stats::read_json_file(golden);
    const std::vector<std::string> diff = trace::golden_diff(ref, st.snapshot);
    if (!diff.empty()) {
      std::fprintf(stderr, "golden mismatch vs %s:\n", golden.c_str());
      for (const std::string& line : diff)
        std::fprintf(stderr, "  %s\n", line.c_str());
      return 1;
    }
    std::printf("golden match vs %s\n", golden.c_str());
  }
  return 0;
}

/// Restore one region in a forked child (all simulation threads of previous
/// runs are joined, so fork() is safe here).
int run_region_child(const std::string& path, Cycles run_for) {
  try {
    ckpt::CheckpointFile f = ckpt::read_file(path);
    sim::SimulationConfig cfg = ckpt::config_from(f);
    const workloads::ScenarioParams params = scenario_from_meta(f);
    ckpt::CheckpointRestorer restorer(std::move(f), run_for);
    cfg.ckpt = &restorer;
    cfg.post_build = [&restorer](sim::Simulation& s) { restorer.bind(s); };
    const workloads::ScenarioStats st = workloads::run_scenario(cfg, params);
    if (!restorer.installed()) return 1;
    std::printf("region %s: installed at %llu, ran to %llu\n", path.c_str(),
                static_cast<unsigned long long>(restorer.installed_at()),
                static_cast<unsigned long long>(st.cycles));
    std::fflush(nullptr);  // the caller _exit()s, which skips stdio flush
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "region %s: %s\n", path.c_str(), e.what());
    std::fflush(nullptr);
    return 1;
  }
}

/// Actual snapshot cycle from a multi-snapshot path (`out`.<cycle>); 0 when
/// the path carries no parseable suffix (single-snapshot runs).
Cycles cycle_from_path(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return 0;
  const std::string tail = path.substr(dot + 1);
  if (tail.empty() ||
      tail.find_first_not_of("0123456789") != std::string::npos)
    return 0;
  return std::stoull(tail);
}

int cmd_sample(const util::Flags& flags) {
  const auto every = static_cast<Cycles>(flags.get_int("every"));
  const int regions_want = static_cast<int>(flags.get_int("regions"));
  if ((every == 0) == (regions_want == 0))
    throw util::ConfigError(
        "sample mode requires exactly one of --every=<cycles> or "
        "--regions=<n>");
  sim::SimulationConfig cfg = config_from_flags(flags);
  const workloads::ScenarioParams params = scenario_from_flags(flags);
  ckpt::CreateOptions opts;
  opts.out = flags.get("out");
  opts.meta = params.kv;
  opts.meta["workload"] = params.workload;
  if (regions_want > 0) {
    // Profile pass: run the workload once with only the event-rate tap
    // attached, then place the snapshot cycles at the event-count quantile
    // boundaries. Even cycle spacing makes front-loaded runs (setup-heavy
    // workloads, burst phases) produce a few huge regions and many idle
    // ones; balancing by event count equalizes the actual replay work.
    sim::SimulationConfig profile_cfg = cfg;
    ckpt::EventProfiler profiler;
    profile_cfg.ckpt = &profiler;
    const workloads::ScenarioStats prof =
        workloads::run_scenario(profile_cfg, params);
    opts.at_cycles =
        ckpt::balanced_sample_cycles(profiler.profile(), regions_want);
    std::printf("profiled %llu data picks over %llu cycles -> %zu balanced "
                "snapshot cycles\n",
                static_cast<unsigned long long>(profiler.profile().total()),
                static_cast<unsigned long long>(prof.cycles),
                opts.at_cycles.size());
    if (opts.at_cycles.empty()) {
      std::fprintf(stderr,
                   "profile too concentrated to split into %d regions\n",
                   regions_want);
      return 1;
    }
  } else {
    opts.every = every;
  }

  // Snapshot pass: uninterrupted run, snapshotting at each target.
  ckpt::CheckpointWriter writer(cfg, opts);
  cfg.ckpt = &writer;
  cfg.post_build = [&writer](sim::Simulation& s) { writer.bind(s); };
  const workloads::ScenarioStats st = workloads::run_scenario(cfg, params);
  print_summary(params.workload.c_str(), st);
  if (every > 0)
    std::printf("sampled %zu regions of %llu cycles\n",
                writer.written().size(),
                static_cast<unsigned long long>(every));
  else
    std::printf("sampled %zu event-balanced regions\n",
                writer.written().size());
  if (writer.written().empty()) return 1;

  // Fan the regions across host processes. In --every mode each region
  // runs a fixed K cycles; in --regions mode region i runs until region
  // i+1's actual snapshot cycle (the last one runs to completion).
  const std::vector<std::string>& regions = writer.written();
  std::vector<Cycles> run_fors(regions.size(), every);
  if (regions_want > 0) {
    for (std::size_t i = 0; i + 1 < regions.size(); ++i) {
      const Cycles a = cycle_from_path(regions[i]);
      const Cycles b = cycle_from_path(regions[i + 1]);
      run_fors[i] = b > a ? b - a : 0;
    }
    run_fors.back() = 0;  // to completion
  }
  int jobs = static_cast<int>(flags.get_int("jobs"));
  if (jobs <= 0)
    jobs = std::max(1u, std::thread::hardware_concurrency());
  std::fflush(nullptr);  // forked children must not inherit buffered output
  std::size_t next = 0;
  int live = 0;
  int failures = 0;
  std::map<pid_t, std::string> running;
  while (next < regions.size() || live > 0) {
    while (next < regions.size() && live < jobs) {
      const std::size_t idx = next++;
      const std::string& path = regions[idx];
      const pid_t pid = fork();
      if (pid == 0) _exit(run_region_child(path, run_fors[idx]));
      if (pid < 0) {
        std::fprintf(stderr, "fork failed for %s\n", path.c_str());
        ++failures;
        continue;
      }
      running[pid] = path;
      ++live;
    }
    if (live == 0) break;
    int status = 0;
    const pid_t done = waitpid(-1, &status, 0);
    if (done < 0) break;
    --live;
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok) {
      std::fprintf(stderr, "region %s failed\n", running[done].c_str());
      ++failures;
    }
    running.erase(done);
  }
  std::printf("%zu/%zu regions completed\n", regions.size() - failures,
              regions.size());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::map<std::string, std::string> defaults = {
        {"workload", "sci"},
        {"out", "compass.ckpt"},
        {"at", ""},
        {"every", "0"},
        {"regions", "0"},
        {"run-for", "0"},
        {"warp", "auto"},
        {"restore-workers", ""},
        {"jobs", "0"},
        {"trace-out", ""},
        {"stats-json", ""},
        {"golden-json", ""},
        {"cpus", "4"},
        {"nodes", "1"},
        {"backend-workers", "1"},
        {"quantum", "0"},
        {"model", "simple"},
        {"l1-filter", "0"},
        {"batch-size", "1"},
        {"n", "32"},
        {"nprocs", "2"},
        {"workers", "2"},
        {"txns", "40"},
        {"items", "400"},
        {"warehouses", "2"},
        {"repeats", "1"},
        {"use-mmap", "0"},
        {"requests", "20"},
        {"servers", "1"},
        {"seed", "99"}};
    std::map<std::string, std::string> help = {
        {"workload", "sci | web | tpcc | tpcd"},
        {"out", "checkpoint path (create/sample; .<cycle> appended per file)"},
        {"at", "create: comma-separated snapshot cycles"},
        {"every", "create/sample: snapshot every K cycles"},
        {"regions", "sample: profile a first pass, then snapshot at N-region "
                    "event-count quantile boundaries (exclusive with "
                    "--every)"},
        {"run-for", "restore: stop this many cycles after the install point"},
        {"warp", "restore: fast-forward mode auto | self | port"},
        {"restore-workers", "restore: override backend dispatch lanes"},
        {"jobs", "sample: parallel region processes (0 = host cores)"},
        {"trace-out", "record the run's event trace"},
        {"stats-json", "dump final stats as JSON"},
        {"golden-json", "restore: compare final stats vs this reference"},
        {"cpus", "simulated processors"},
        {"nodes", "NUMA nodes"},
        {"backend-workers", "backend dispatch lanes"},
        {"quantum", "preemption quantum in cycles (0 = cooperative)"},
        {"model", "memory-system model: flat | simple | numa"},
        {"l1-filter", "frontend L1 reference filter"},
        {"batch-size", "events per event-port post (interleaving grain)"},
        {"n", "sci: matrix dimension"},
        {"nprocs", "sci: worker processes"},
        {"workers", "tpcc/tpcd: worker processes"},
        {"txns", "tpcc: transactions per worker"},
        {"items", "tpcc: item-table size"},
        {"warehouses", "tpcc: warehouse count"},
        {"repeats", "tpcd: query executions per worker"},
        {"use-mmap", "tpcd: run Q1 through mmap (single worker only)"},
        {"requests", "web: request count"},
        {"servers", "web: server processes"},
        {"seed", "web: request-trace seed"}};
    fault::add_fault_flags(defaults, help);
    util::Flags flags(argc, argv, std::move(defaults), std::move(help));
    if (flags.help_requested() || flags.positional().empty()) {
      std::fputs("usage: ckpt_tool create|info|restore|sample [flags] "
                 "[checkpoint]\n",
                 stdout);
      std::fputs(flags.usage("ckpt_tool").c_str(), stdout);
      return flags.help_requested() ? 0 : 2;
    }
    const std::string& cmd = flags.positional()[0];
    if (cmd == "create") return cmd_create(flags);
    if (cmd == "sample") return cmd_sample(flags);
    if (cmd == "info" || cmd == "restore") {
      if (flags.positional().size() < 2)
        throw util::ConfigError(cmd + " needs a checkpoint file argument");
      const std::string& path = flags.positional()[1];
      return cmd == "info" ? cmd_info(path) : cmd_restore(flags, path);
    }
    throw util::ConfigError("unknown subcommand '" + cmd +
                            "' (expected create|info|restore|sample)");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ckpt_tool: %s\n", e.what());
    return 2;
  }
}
